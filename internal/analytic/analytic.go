// Package analytic implements the paper's analytical model of the
// BitTorrent Dilemma (Section 2.2, Table 1) and the Appendix deviation
// analysis showing that BitTorrent's TFT is not a Nash equilibrium in
// that abstraction while the Birds protocol is.
//
// The model counts the expected number of "games" a peer c from a given
// bandwidth class wins per unchoke period, split into games won through
// reciprocation (Er) and "free game wins" granted by other peers'
// optimistic unchokes (E). Classes are relative to c: A above (faster),
// B below (slower), C its own class.
package analytic

import (
	"fmt"
	"math"
)

// Params holds the model parameters of Table 1.
type Params struct {
	NA int // TFT players in classes above c's class
	NB int // TFT players in classes below c's class
	NC int // TFT players in c's class (including c)
	Ur int // regular unchoke slots (simultaneous reciprocation partners)
}

// Validate checks the assumptions the paper's derivation relies on:
// at least one peer in each relative position where used, NA > Ur so
// higher classes never reciprocate down, NC large enough to fill c's
// partner set within its class, and a positive pool Nr.
func (p Params) Validate() error {
	if p.Ur < 1 {
		return fmt.Errorf("analytic: Ur must be >= 1, got %d", p.Ur)
	}
	if p.NA <= p.Ur {
		return fmt.Errorf("analytic: model assumes NA > Ur (got NA=%d, Ur=%d)", p.NA, p.Ur)
	}
	if p.NC < p.Ur+2 {
		return fmt.Errorf("analytic: need NC >= Ur+2 for within-class dynamics (got NC=%d, Ur=%d)", p.NC, p.Ur)
	}
	if p.NB < 0 {
		return fmt.Errorf("analytic: NB must be >= 0, got %d", p.NB)
	}
	if p.Nr() <= 0 {
		return fmt.Errorf("analytic: Nr = %d must be positive", p.Nr())
	}
	return nil
}

// Nr returns the pool of peers in contention for optimistic unchokes,
// NA+NB+NC-Ur-1 (Table 1).
func (p Params) Nr() int { return p.NA + p.NB + p.NC - p.Ur - 1 }

// Wins decomposes the expected games won by peer c per period.
type Wins struct {
	RecipA float64 // Er[A→c]: reciprocation wins from higher classes
	FreeA  float64 // E[A→c]: free wins granted by higher classes
	RecipB float64 // Er[B→c]
	FreeB  float64 // E[B→c]
	RecipC float64 // Er[C→c]
	FreeC  float64 // E[C→c]
}

// Total returns the summed expected wins.
func (w Wins) Total() float64 {
	return w.RecipA + w.FreeA + w.RecipB + w.FreeB + w.RecipC + w.FreeC
}

// freeFromAbove is E[A→c] = NA/Nr: the chance per period that a peer
// from a higher class optimistically unchokes c.
func (p Params) freeFromAbove() float64 {
	return float64(p.NA) / float64(p.Nr())
}

// kBreak is K = 1 - ((1-E[A→c])(1-1/Ur))^Ur: the probability that at
// least one of c's Ur same-class partners is lured away by a free game
// win from a higher class (Section 2.2, equation (1)).
func (p Params) kBreak() float64 {
	ea := p.freeFromAbove()
	return 1 - math.Pow((1-ea)*(1-1/float64(p.Ur)), float64(p.Ur))
}

// kBreakPrime is K' = 1 - ((1-E[A→c])(1-1/Ur))^(Ur-1), the Appendix
// variant over Ur-1 partners.
func (p Params) kBreakPrime() float64 {
	ea := p.freeFromAbove()
	return 1 - math.Pow((1-ea)*(1-1/float64(p.Ur)), float64(p.Ur-1))
}

// BitTorrent returns the expected wins of a BitTorrent (TFT) peer c in
// a homogeneous BitTorrent population, following Section 2.2:
//
//	Er[A→c] = 0                E[A→c] = NA/Nr
//	Er[B→c] = NB/Nr            E[B→c] = NB/Nr
//	Er[C→c] = Ur - E[A→c] - K  (equation 1)
//	E[C→c]  = (NC-1-Er[C→c])/Nr
func BitTorrent(p Params) (Wins, error) {
	if err := p.Validate(); err != nil {
		return Wins{}, err
	}
	nr := float64(p.Nr())
	ea := p.freeFromAbove()
	w := Wins{
		RecipA: 0,
		FreeA:  ea,
		RecipB: float64(p.NB) / nr,
		FreeB:  float64(p.NB) / nr,
	}
	w.RecipC = float64(p.Ur) - ea - p.kBreak()
	w.FreeC = (float64(p.NC-1) - w.RecipC) / nr
	return w, nil
}

// Birds returns the expected wins of a Birds peer c in a homogeneous
// Birds population (Section 2.3):
//
//	ErB[A→c] = ErB[B→c] = 0    (Birds defects across classes)
//	ErB[C→c] = Ur              (stable within-class partnerships)
//	free game wins unchanged vs BitTorrent; EB[C→c] = (NC-1-Ur)/Nr.
func Birds(p Params) (Wins, error) {
	if err := p.Validate(); err != nil {
		return Wins{}, err
	}
	nr := float64(p.Nr())
	w := Wins{
		RecipA: 0,
		FreeA:  p.freeFromAbove(),
		RecipB: 0,
		FreeB:  float64(p.NB) / nr,
		RecipC: float64(p.Ur),
	}
	w.FreeC = (float64(p.NC-1) - float64(p.Ur)) / nr
	return w, nil
}

// Deviation holds the outcome of a unilateral deviation experiment: the
// expected wins of the single deviant peer and of a resident peer of
// the incumbent protocol in the same class.
type Deviation struct {
	Deviant  Wins
	Resident Wins
}

// Gain returns deviant total minus resident total: positive means the
// deviation is profitable and the incumbent protocol is not a Nash
// equilibrium.
func (d Deviation) Gain() float64 { return d.Deviant.Total() - d.Resident.Total() }

// BirdsDeviantInBT analyses one Birds peer entering a swarm of N-1
// BitTorrent peers (Appendix, first part). Cross-class terms: the Birds
// deviant wins the same NB/Nr against lower classes and the same free
// wins from above. Within class C (NC' = NC-1 BT peers plus the
// deviant):
//
//	ErB[C→c]' = Ur - K                          (deviant)
//	Er[C→c]'  = ((NC'-Ur)/NC')(Ur-K-E[A→c])
//	          + (Ur/NC')(Ur-E[A→c]-K')          (resident)
//	EB[C→c]'  = (NC'/NC)(NC-Er[C→c]')/Nr        (deviant free wins)
//	E[C→c]'   = EB[C→c]' + (NC-ErB[C→c]')/(NC·Nr)
func BirdsDeviantInBT(p Params) (Deviation, error) {
	if err := p.Validate(); err != nil {
		return Deviation{}, err
	}
	nr := float64(p.Nr())
	ea := p.freeFromAbove()
	k := p.kBreak()
	kp := p.kBreakPrime()
	ur := float64(p.Ur)
	ncp := float64(p.NC - 1) // NC': BT peers remaining in class C
	nc := float64(p.NC)

	dev := Wins{
		RecipA: 0, FreeA: ea,
		RecipB: float64(p.NB) / nr, FreeB: float64(p.NB) / nr,
		RecipC: ur - k,
	}
	res := Wins{
		RecipA: 0, FreeA: ea,
		RecipB: float64(p.NB) / nr, FreeB: float64(p.NB) / nr,
	}
	res.RecipC = ((ncp-ur)/ncp)*(ur-k-ea) + (ur/ncp)*(ur-ea-kp)
	dev.FreeC = (ncp / nc) * (nc - res.RecipC) / nr
	res.FreeC = dev.FreeC + (nc-dev.RecipC)/(nc*nr)
	return Deviation{Deviant: dev, Resident: res}, nil
}

// BTDeviantInBirds analyses one BitTorrent peer entering a swarm of N-1
// Birds peers (Appendix, second part). Within class C (NC' = NC-1 Birds
// peers plus the deviant):
//
//	ErB[C→c]'' = ((NC'-Ur)/NC')·Ur + (Ur/NC')(Ur-E[A→c])
//	           = Ur - (Ur/NC')·E[A→c]           (resident Birds)
//	Er[C→c]''  = Ur - E[A→c]                    (deviant BT)
//	E[C→c]''   = (NC'/NC)·(NC'-ErB[C→c]'')/(N-Ur-1)
//	EB[C→c]''  = E[C→c]'' + (NC'-Er[C→c]'')/(NC'·(N-Ur-1))
func BTDeviantInBirds(p Params) (Deviation, error) {
	if err := p.Validate(); err != nil {
		return Deviation{}, err
	}
	nr := float64(p.Nr()) // Nr = N-Ur-1 with N = NA+NB+NC
	ea := p.freeFromAbove()
	ur := float64(p.Ur)
	ncp := float64(p.NC - 1) // NC': Birds peers in class C
	nc := float64(p.NC)

	res := Wins{ // resident Birds peer
		RecipA: 0, FreeA: ea,
		RecipB: 0, FreeB: float64(p.NB) / nr,
		RecipC: ur - (ur/ncp)*ea,
	}
	dev := Wins{ // deviant BT peer
		RecipA: 0, FreeA: ea,
		// The deviant's optimistic unchokes toward lower classes are
		// never reciprocated: Birds residents defect across classes.
		// (In the mirror case the Birds deviant in a BT swarm *does*
		// earn NB/Nr, because BT residents cooperate upward.)
		RecipB: 0, FreeB: float64(p.NB) / nr,
		RecipC: ur - ea,
	}
	dev.FreeC = (ncp / nc) * (ncp - res.RecipC) / nr
	res.FreeC = dev.FreeC + (ncp-dev.RecipC)/(ncp*nr)
	return Deviation{Deviant: dev, Resident: res}, nil
}

// Verdict summarises a Nash-equilibrium check across a parameter grid.
type Verdict struct {
	Checked    int     // parameter combinations evaluated
	Profitable int     // combinations where the deviation gained
	MaxGain    float64 // largest observed gain
	MinGain    float64 // smallest observed gain
}

// IsEquilibrium reports whether no checked deviation was profitable.
func (v Verdict) IsEquilibrium() bool { return v.Checked > 0 && v.Profitable == 0 }

// CheckBTNash evaluates the profitability of a Birds deviation in a BT
// swarm over the given parameter grid. The paper's Appendix argues the
// deviation is always profitable, i.e. BitTorrent is not a Nash
// equilibrium; the returned verdict quantifies that numerically.
func CheckBTNash(grid []Params) (Verdict, error) {
	return check(grid, BirdsDeviantInBT)
}

// CheckBirdsNash evaluates the profitability of a BT deviation in a
// Birds swarm over the given parameter grid. The Appendix argues it is
// never profitable, i.e. Birds is a Nash equilibrium.
func CheckBirdsNash(grid []Params) (Verdict, error) {
	return check(grid, BTDeviantInBirds)
}

func check(grid []Params, f func(Params) (Deviation, error)) (Verdict, error) {
	v := Verdict{MaxGain: math.Inf(-1), MinGain: math.Inf(1)}
	for _, p := range grid {
		d, err := f(p)
		if err != nil {
			return Verdict{}, err
		}
		g := d.Gain()
		v.Checked++
		if g > 0 {
			v.Profitable++
		}
		if g > v.MaxGain {
			v.MaxGain = g
		}
		if g < v.MinGain {
			v.MinGain = g
		}
	}
	return v, nil
}

// DefaultGrid returns a broad parameter grid of valid model
// configurations for equilibrium checks: class sizes 5..60 and unchoke
// slots 1..4 (BitTorrent's default is 4 regular unchokes).
func DefaultGrid() []Params {
	var grid []Params
	for _, ur := range []int{1, 2, 3, 4} {
		for _, na := range []int{5, 10, 20, 40, 60} {
			for _, nb := range []int{0, 5, 10, 20, 40} {
				for _, nc := range []int{5, 10, 20, 40, 60} {
					p := Params{NA: na, NB: nb, NC: nc, Ur: ur}
					if p.Validate() == nil {
						grid = append(grid, p)
					}
				}
			}
		}
	}
	return grid
}
