package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func validParams() Params { return Params{NA: 20, NB: 15, NC: 15, Ur: 4} }

func TestValidate(t *testing.T) {
	if err := validParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{NA: 20, NB: 10, NC: 10, Ur: 0}, // Ur < 1
		{NA: 3, NB: 10, NC: 10, Ur: 4},  // NA <= Ur
		{NA: 20, NB: 10, NC: 4, Ur: 4},  // NC too small
		{NA: 20, NB: -1, NC: 10, Ur: 4}, // negative NB
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestNr(t *testing.T) {
	p := Params{NA: 10, NB: 5, NC: 8, Ur: 4}
	if got := p.Nr(); got != 10+5+8-4-1 {
		t.Errorf("Nr = %d", got)
	}
}

func TestBitTorrentWinsStructure(t *testing.T) {
	p := validParams()
	w, err := BitTorrent(p)
	if err != nil {
		t.Fatal(err)
	}
	// Er[A→c] = 0: higher classes never reciprocate down.
	if w.RecipA != 0 {
		t.Errorf("RecipA = %v, want 0", w.RecipA)
	}
	// E[A→c] = NA/Nr.
	if want := float64(p.NA) / float64(p.Nr()); w.FreeA != want {
		t.Errorf("FreeA = %v, want %v", w.FreeA, want)
	}
	// Er[B→c] = E[B→c] = NB/Nr.
	if want := float64(p.NB) / float64(p.Nr()); w.RecipB != want || w.FreeB != want {
		t.Errorf("B wins = %v/%v, want %v", w.RecipB, w.FreeB, want)
	}
	// Equation (1): Er[C→c] = Ur - E[A→c] - K with K in (0,1).
	k := 1 - math.Pow((1-w.FreeA)*(1-0.25), 4)
	if want := 4 - w.FreeA - k; !close(w.RecipC, want) {
		t.Errorf("RecipC = %v, want %v", w.RecipC, want)
	}
	if w.RecipC >= float64(p.Ur) {
		t.Error("BT within-class reciprocation must be < Ur (relationships break)")
	}
	// E[C→c] = (NC-1-Er[C→c])/Nr.
	if want := (float64(p.NC-1) - w.RecipC) / float64(p.Nr()); !close(w.FreeC, want) {
		t.Errorf("FreeC = %v, want %v", w.FreeC, want)
	}
}

func TestBirdsWinsStructure(t *testing.T) {
	p := validParams()
	w, err := Birds(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.RecipA != 0 || w.RecipB != 0 {
		t.Error("Birds reciprocates only within its class")
	}
	if w.RecipC != float64(p.Ur) {
		t.Errorf("RecipC = %v, want Ur", w.RecipC)
	}
	if want := (float64(p.NC-1) - float64(p.Ur)) / float64(p.Nr()); !close(w.FreeC, want) {
		t.Errorf("FreeC = %v, want %v", w.FreeC, want)
	}
}

func TestBirdsBeatsBTWithinClass(t *testing.T) {
	// The heart of Section 2.3: Birds keeps all Ur within-class
	// partnerships, BT loses some to higher-class temptation.
	for _, p := range DefaultGrid() {
		bt, err := BitTorrent(p)
		if err != nil {
			t.Fatal(err)
		}
		birds, err := Birds(p)
		if err != nil {
			t.Fatal(err)
		}
		if birds.RecipC <= bt.RecipC {
			t.Fatalf("params %+v: Birds RecipC %v should exceed BT %v", p, birds.RecipC, bt.RecipC)
		}
	}
}

func TestBTNotNashEquilibrium(t *testing.T) {
	// Appendix, part 1: "the peer using the Birds protocol, on
	// average, wins more games than any of the BT clients, proving
	// that BT is not a NE." Must hold over the whole default grid.
	v, err := CheckBTNash(DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	if v.Checked == 0 {
		t.Fatal("empty grid")
	}
	// The deviation is profitable in the overwhelming majority of
	// configurations. A handful of degenerate corners (NC at the
	// validation boundary with a lower-class-dominated population,
	// NB >> NA+NC) fall outside the paper's implicit assumptions; see
	// EXPERIMENTS.md. A single profitable deviation suffices to break
	// the equilibrium, so BT is not a NE either way.
	if frac := float64(v.Profitable) / float64(v.Checked); frac < 0.95 {
		t.Errorf("Birds deviation profitable in only %d/%d configs", v.Profitable, v.Checked)
	}
	if v.IsEquilibrium() {
		t.Error("BT must not be a Nash equilibrium")
	}
	if v.MaxGain <= 0 {
		t.Errorf("max gain = %v, want > 0", v.MaxGain)
	}
	// In every balanced configuration (lower classes not dominating),
	// the deviation gains, exactly as the Appendix derives.
	for _, p := range DefaultGrid() {
		if p.NB >= p.NA+p.NC {
			continue
		}
		d, err := BirdsDeviantInBT(p)
		if err != nil {
			t.Fatal(err)
		}
		if d.Gain() <= 0 {
			t.Errorf("balanced config %+v: gain = %v, want > 0", p, d.Gain())
		}
	}
}

func TestBirdsIsNashEquilibrium(t *testing.T) {
	// Appendix, part 2: a BT deviant in a Birds swarm never gains.
	v, err := CheckBirdsNash(DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsEquilibrium() {
		t.Errorf("Birds should be a NE; %d/%d deviations profitable (max gain %v)",
			v.Profitable, v.Checked, v.MaxGain)
	}
	if v.MaxGain >= 0 {
		t.Errorf("max gain = %v, want < 0 (strictly unprofitable)", v.MaxGain)
	}
}

func TestDeviationGainSign(t *testing.T) {
	p := validParams()
	d, err := BirdsDeviantInBT(p)
	if err != nil {
		t.Fatal(err)
	}
	if d.Gain() <= 0 {
		t.Errorf("Birds deviant gain = %v, want > 0", d.Gain())
	}
	d2, err := BTDeviantInBirds(p)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Gain() >= 0 {
		t.Errorf("BT deviant gain = %v, want < 0", d2.Gain())
	}
}

func TestWinsTotal(t *testing.T) {
	w := Wins{RecipA: 1, FreeA: 2, RecipB: 3, FreeB: 4, RecipC: 5, FreeC: 6}
	if w.Total() != 21 {
		t.Errorf("Total = %v", w.Total())
	}
}

func TestInvalidParamsPropagate(t *testing.T) {
	bad := Params{NA: 1, NB: 1, NC: 1, Ur: 4}
	if _, err := BitTorrent(bad); err == nil {
		t.Error("BitTorrent should propagate validation error")
	}
	if _, err := Birds(bad); err == nil {
		t.Error("Birds should propagate validation error")
	}
	if _, err := BirdsDeviantInBT(bad); err == nil {
		t.Error("BirdsDeviantInBT should propagate validation error")
	}
	if _, err := BTDeviantInBirds(bad); err == nil {
		t.Error("BTDeviantInBirds should propagate validation error")
	}
	if _, err := CheckBTNash([]Params{bad}); err == nil {
		t.Error("CheckBTNash should propagate validation error")
	}
}

func TestKBreakBounds(t *testing.T) {
	// K and K' are probabilities: always within (0,1) for valid params,
	// and K >= K' since K covers one more partner.
	f := func(na, nb, nc, ur uint8) bool {
		p := Params{
			NA: int(na%60) + 5, NB: int(nb % 40),
			NC: int(nc%60) + 6, Ur: int(ur%4) + 1,
		}
		if p.Validate() != nil {
			return true
		}
		k, kp := p.kBreak(), p.kBreakPrime()
		// With Ur=1 the (1-1/Ur) factor vanishes and K is exactly 1:
		// a single partnership always breaks under temptation.
		return k > 0 && k <= 1 && kp >= 0 && kp < 1 && k >= kp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreeWinsScaleWithUpperClass(t *testing.T) {
	// More peers above c → more free game wins from above.
	small := Params{NA: 10, NB: 10, NC: 10, Ur: 4}
	large := Params{NA: 40, NB: 10, NC: 10, Ur: 4}
	ws, err := BitTorrent(small)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := BitTorrent(large)
	if err != nil {
		t.Fatal(err)
	}
	if wl.FreeA <= ws.FreeA {
		t.Errorf("FreeA should grow with NA: %v vs %v", wl.FreeA, ws.FreeA)
	}
}

func TestDefaultGridAllValid(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) < 100 {
		t.Errorf("grid unexpectedly small: %d", len(grid))
	}
	for _, p := range grid {
		if err := p.Validate(); err != nil {
			t.Fatalf("grid contains invalid params %+v: %v", p, err)
		}
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
