#!/usr/bin/env bash
# Grid smoke test with real processes and a real SIGKILL: a 1-coordinator
# + 2-worker localhost grid sweeps the gossip domain behind worker auth,
# one worker is killed -9 mid-run (its leases must expire and re-queue),
# the live /metrics endpoint is scraped mid-sweep, and the resulting CSV
# must be byte-identical to a single-process dsa-sweep of the same spec.
# A second phase checks POST /v1/drain shuts a coordinator down with
# exit code 0. Run from the repo root; CI runs it on every push.
set -euo pipefail

workdir=$(mktemp -d)
bin="$workdir/bin"
mkdir -p "$bin"
token="smoke-grid-secret"
cleanup() {
  # Kill anything still running; ignore the ones already gone.
  kill -9 "${coord_pid:-}" "${w1_pid:-}" "${w2_pid:-}" "${drain_pid:-}" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building dsa-grid and dsa-sweep"
go build -o "$bin/dsa-grid" ./cmd/dsa-grid
go build -o "$bin/dsa-sweep" ./cmd/dsa-sweep

# Sweep shape: 36 gossip points, chunk 1 => 72 tasks, sims sized so
# the whole grid run takes several seconds — long enough to kill a
# worker in the middle. Flags must match between the grid and the
# single-process reference exactly.
sweep_flags=(-domain gossip -stride 6 -peers 16 -rounds 800 -perfruns 3
             -encruns 1 -opponents 8 -seed 11 -chunk 1)
addr="127.0.0.1:18437"
url="http://$addr"

echo "== single-process reference sweep"
"$bin/dsa-sweep" "${sweep_flags[@]}" -preset quick -out "$workdir/reference.csv"

echo "== starting coordinator (worker auth on)"
"$bin/dsa-grid" serve -addr "$addr" "${sweep_flags[@]}" -preset quick \
  -checkpoint-dir "$workdir/ckpt" -lease-ttl 2s -once -out "$workdir/grid.csv" \
  -auth-token "$token" \
  >"$workdir/coordinator.log" 2>&1 &
coord_pid=$!

# Wait for the API to come up.
for _ in $(seq 1 50); do
  curl -sf "$url/v1/jobs" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$url/v1/jobs" >/dev/null

echo "== starting 2 workers"
# The doomed worker computes serially but leases greedily, so it holds
# unfinished leases for almost its whole life — the SIGKILL below is
# then guaranteed to strand leases for the expiry path to recover.
"$bin/dsa-grid" work -coordinator "$url" -name doomed -workers 1 -tasks-per-lease 4 \
  -auth-token "$token" \
  >"$workdir/worker1.log" 2>&1 &
w1_pid=$!
"$bin/dsa-grid" work -coordinator "$url" -name survivor -tasks-per-lease 2 \
  -auth-token "$token" \
  >"$workdir/worker2.log" 2>&1 &
w2_pid=$!

# An unauthenticated lease must bounce with 401 and a JSON error.
job_for_auth=$(curl -sf "$url/v1/jobs" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
code=$(curl -s -o "$workdir/unauth.json" -w '%{http_code}' -X POST \
  -d '{"worker":"intruder"}' "$url/v1/jobs/$job_for_auth/lease")
if [ "$code" != "401" ] || ! grep -q '"error"' "$workdir/unauth.json"; then
  echo "unauthenticated lease answered $code (want 401 + JSON error)" >&2
  cat "$workdir/unauth.json" >&2
  exit 1
fi
echo "== unauthenticated lease correctly rejected with 401"

# Find the job ID, then kill the first worker as soon as a few tasks
# are done but most are still outstanding — a genuine mid-run SIGKILL.
job_id=$(curl -sf "$url/v1/jobs" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
echo "== waiting for progress on job $job_id, then SIGKILLing worker 'doomed'"
for _ in $(seq 1 200); do
  done_tasks=$(curl -sf "$url/v1/jobs/$job_id/progress" | grep -o '"done_tasks":[0-9]*' | cut -d: -f2)
  [ "${done_tasks:-0}" -ge 4 ] && break
  sleep 0.1
done
if [ "${done_tasks:-0}" -ge 60 ] || ! kill -0 "$w1_pid" 2>/dev/null; then
  echo "sweep nearly done before the kill; the workload is too small for this smoke" >&2
  exit 1
fi
kill -9 "$w1_pid"
echo "killed at $done_tasks/72 tasks"

echo "== scraping /metrics mid-sweep"
curl -sf "$url/metrics" >"$workdir/metrics.txt"
for metric in grid_leases_granted_total grid_tasks_ingested_total grid_values_ingested_total; do
  if ! grep -Eq "^$metric [0-9]*[1-9]" "$workdir/metrics.txt"; then
    echo "mid-sweep /metrics has no non-zero $metric" >&2
    grep "^$metric" "$workdir/metrics.txt" >&2 || true
    exit 1
  fi
done
grep -q '^grid_job_tasks{' "$workdir/metrics.txt" || {
  echo "mid-sweep /metrics missing per-job queue-depth gauges" >&2; exit 1; }

echo "== waiting for the surviving worker + coordinator to finish"
wait "$w2_pid"
wait "$coord_pid"

echo "== comparing grid CSV against the single-process reference"
cmp "$workdir/reference.csv" "$workdir/grid.csv"

# The kill must actually have exercised the re-lease path.
if ! grep -q "re-queued" "$workdir/coordinator.log"; then
  echo "no lease ever expired — the SIGKILL did not leave leases behind?" >&2
  cat "$workdir/coordinator.log" >&2
  exit 1
fi
echo "OK: byte-identical scores, and the dead worker's leases were re-queued"

echo "== drain: POST /v1/drain must shut a coordinator down cleanly"
drain_addr="127.0.0.1:18438"
drain_url="http://$drain_addr"
"$bin/dsa-grid" serve -addr "$drain_addr" "${sweep_flags[@]}" -preset quick \
  -auth-token "$token" >"$workdir/drain.log" 2>&1 &
drain_pid=$!
for _ in $(seq 1 50); do
  curl -sf "$drain_url/v1/jobs" >/dev/null 2>&1 && break
  sleep 0.2
done
# Unauthenticated drain must bounce; authenticated drain must land.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$drain_url/v1/drain")
if [ "$code" != "401" ]; then
  echo "unauthenticated drain answered $code (want 401)" >&2; exit 1
fi
curl -sf -X POST -H "Authorization: Bearer $token" "$drain_url/v1/drain" \
  | grep -q '"draining":true' || { echo "drain response malformed" >&2; exit 1; }
drain_rc=0
wait "$drain_pid" || drain_rc=$?
if [ "$drain_rc" -ne 0 ]; then
  echo "drained coordinator exited $drain_rc (want 0)" >&2
  cat "$workdir/drain.log" >&2
  exit 1
fi
grep -q "drained" "$workdir/drain.log" || {
  echo "coordinator log never reported the drain" >&2; exit 1; }
echo "OK: drain rejected without auth, accepted with auth, exit code 0"
