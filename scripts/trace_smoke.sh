#!/usr/bin/env bash
# Tracing smoke test with real processes: a 1-coordinator + 2-worker
# localhost grid runs a gossip sweep with both workers journalling
# spans into a shared -trace-dir and one worker serving live counters
# on -metrics-addr. Asserts the traced run's CSV is byte-identical to
# an untraced single-process sweep, the mid-sweep /metrics scrape shows
# non-zero worker counters, both journals exist and merge, and
# `dsa-report trace` digests them with exit code 0. A second leg reruns
# the sweep with both workers shipping their journals to the
# coordinator (-ship-traces) and asserts the coordinator-collected
# merged trace is byte-identical to the locally merged reference, the
# remote and local digest reports match, and the coordinator's
# /metrics federates trace-ingest and per-worker latency counters. A
# final bench pair pins the tracing overhead on the task execution
# path under 5% (shipping structurally cannot touch that path: the
# shipper tails the journal file from its own goroutine).
# Run from the repo root; CI runs it on every push.
set -euo pipefail

workdir=$(mktemp -d)
bin="$workdir/bin"
mkdir -p "$bin"
cleanup() {
  kill -9 "${coord_pid:-}" "${w1_pid:-}" "${w2_pid:-}" \
          "${ship_coord_pid:-}" "${s1_pid:-}" "${s2_pid:-}" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building dsa-grid, dsa-sweep and dsa-report"
go build -o "$bin/dsa-grid" ./cmd/dsa-grid
go build -o "$bin/dsa-sweep" ./cmd/dsa-sweep
go build -o "$bin/dsa-report" ./cmd/dsa-report

# Same shape as grid_smoke: 36 gossip points, chunk 1 => 72 tasks,
# sims sized so the grid run lasts long enough to scrape mid-sweep.
sweep_flags=(-domain gossip -stride 6 -peers 16 -rounds 800 -perfruns 3
             -encruns 1 -opponents 8 -seed 11 -chunk 1)
addr="127.0.0.1:18439"
url="http://$addr"
metrics_addr="127.0.0.1:18440"
metrics_url="http://$metrics_addr/metrics"
trace_dir="$workdir/trace"

echo "== untraced single-process reference sweep"
"$bin/dsa-sweep" "${sweep_flags[@]}" -preset quick -out "$workdir/reference.csv"

echo "== starting coordinator"
"$bin/dsa-grid" serve -addr "$addr" "${sweep_flags[@]}" -preset quick \
  -checkpoint-dir "$workdir/ckpt" -once -out "$workdir/grid.csv" \
  >"$workdir/coordinator.log" 2>&1 &
coord_pid=$!
for _ in $(seq 1 50); do
  curl -sf "$url/v1/jobs" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$url/v1/jobs" >/dev/null

echo "== starting 2 traced workers (one serving /metrics)"
"$bin/dsa-grid" work -coordinator "$url" -name tracer1 -workers 1 -tasks-per-lease 2 \
  -trace-dir "$trace_dir" -metrics-addr "$metrics_addr" \
  >"$workdir/worker1.log" 2>&1 &
w1_pid=$!
"$bin/dsa-grid" work -coordinator "$url" -name tracer2 -workers 1 -tasks-per-lease 2 \
  -trace-dir "$trace_dir" \
  >"$workdir/worker2.log" 2>&1 &
w2_pid=$!

echo "== scraping worker /metrics mid-sweep"
scraped=""
for _ in $(seq 1 200); do
  if curl -sf "$metrics_url" >"$workdir/metrics.txt" 2>/dev/null &&
     grep -Eq '^worker_tasks_total [0-9]*[1-9]' "$workdir/metrics.txt"; then
    scraped=yes
    break
  fi
  sleep 0.1
done
if [ -z "$scraped" ]; then
  echo "never saw a non-zero worker_tasks_total on $metrics_url" >&2
  cat "$workdir/metrics.txt" 2>/dev/null >&2 || true
  exit 1
fi
# The sweep must still be running — this is a genuinely mid-sweep scrape.
kill -0 "$coord_pid" || { echo "sweep finished before the scrape" >&2; exit 1; }
for metric in worker_tasks_total worker_lease_requests_total worker_uploads_total \
              worker_points_simulated_total; do
  if ! grep -Eq "^$metric [0-9]*[1-9]" "$workdir/metrics.txt"; then
    echo "mid-sweep worker /metrics has no non-zero $metric" >&2
    grep "^$metric" "$workdir/metrics.txt" >&2 || true
    exit 1
  fi
done
grep -q '^worker_task_seconds_count{measure=' "$workdir/metrics.txt" || {
  echo "mid-sweep worker /metrics missing per-measure latency histogram" >&2; exit 1; }
echo "scraped: $(grep '^worker_tasks_total ' "$workdir/metrics.txt")"

echo "== waiting for the grid sweep to finish"
wait "$w1_pid"
wait "$w2_pid"
wait "$coord_pid"

echo "== traced grid CSV must be byte-identical to the untraced reference"
cmp "$workdir/reference.csv" "$workdir/grid.csv"

echo "== both workers must have journalled spans"
for w in tracer1 tracer2; do
  [ -s "$trace_dir/trace-$w.jsonl" ] || {
    echo "missing or empty journal trace-$w.jsonl" >&2; ls -la "$trace_dir" >&2 || true; exit 1; }
done

echo "== dsa-report trace must digest the merged journals"
"$bin/dsa-report" trace "$trace_dir" >"$workdir/trace_report.txt"
for want in "Trace: " "Per-measure task latency" "Per-worker utilization" \
            "tracer1" "tracer2" "Critical path"; do
  grep -q "$want" "$workdir/trace_report.txt" || {
    echo "trace report missing \"$want\":" >&2
    cat "$workdir/trace_report.txt" >&2
    exit 1
  }
done
# 72 tasks ran somewhere (the split between workers is arbitrary).
grep -Eq '^tasks +72' "$workdir/trace_report.txt" || {
  echo "trace report does not account for all 72 tasks" >&2
  cat "$workdir/trace_report.txt" >&2
  exit 1
}

echo "== remote collection leg: 2 shipping workers, coordinator-collected trace"
ship_addr="127.0.0.1:18441"
ship_url="http://$ship_addr"
trace2_dir="$workdir/trace2"
"$bin/dsa-grid" serve -addr "$ship_addr" "${sweep_flags[@]}" -preset quick \
  -checkpoint-dir "$workdir/ckpt2" \
  >"$workdir/ship_coordinator.log" 2>&1 &
ship_coord_pid=$!
for _ in $(seq 1 50); do
  curl -sf "$ship_url/v1/jobs" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$ship_url/v1/jobs" >/dev/null
"$bin/dsa-grid" work -coordinator "$ship_url" -name shipper1 -workers 1 -tasks-per-lease 2 \
  -trace-dir "$trace2_dir" -ship-traces -ship-interval 500ms -metrics-addr 127.0.0.1:18442 \
  >"$workdir/shipper1.log" 2>&1 &
s1_pid=$!
"$bin/dsa-grid" work -coordinator "$ship_url" -name shipper2 -workers 1 -tasks-per-lease 2 \
  -trace-dir "$trace2_dir" -ship-traces -ship-interval 500ms -metrics-addr 127.0.0.1:18443 \
  >"$workdir/shipper2.log" 2>&1 &
s2_pid=$!
wait "$s1_pid"
wait "$s2_pid"

echo "== coordinator-collected merge must be byte-identical to the local merge"
"$bin/dsa-report" -merged "$workdir/local_merged.jsonl" trace "$trace2_dir" \
  >"$workdir/ship_report_local.txt"
"$bin/dsa-report" -merged "$workdir/remote_merged.jsonl" trace "$ship_url" \
  >"$workdir/ship_report_remote.txt"
cmp "$workdir/local_merged.jsonl" "$workdir/remote_merged.jsonl"
cmp "$workdir/ship_report_local.txt" "$workdir/ship_report_remote.txt"
grep -Eq '^tasks +72' "$workdir/ship_report_remote.txt" || {
  echo "remote trace report does not account for all 72 tasks" >&2
  cat "$workdir/ship_report_remote.txt" >&2
  exit 1
}

echo "== coordinator /metrics must federate trace ingest and per-worker latency"
curl -sf "$ship_url/metrics" >"$workdir/ship_metrics.txt"
for metric in grid_trace_uploads_total grid_trace_bytes_total grid_trace_spans_total; do
  grep -Eq "^$metric [0-9]*[1-9]" "$workdir/ship_metrics.txt" || {
    echo "coordinator /metrics has no non-zero $metric" >&2
    grep "^$metric" "$workdir/ship_metrics.txt" >&2 || true
    exit 1
  }
done
for w in shipper1 shipper2; do
  grep -Eq "^grid_worker_task_seconds_count\{worker=\"$w\",measure=\"[a-z]+\"\} [0-9]*[1-9]" \
    "$workdir/ship_metrics.txt" || {
    echo "coordinator /metrics has no per-worker latency series for $w" >&2
    grep "^grid_worker_task_seconds_count" "$workdir/ship_metrics.txt" >&2 || true
    exit 1
  }
done
grep -Eq '^grid_fleet_task_seconds_count\{measure="[a-z]+"\} [0-9]*[1-9]' \
  "$workdir/ship_metrics.txt" || {
  echo "coordinator /metrics has no fleet-merged latency series" >&2; exit 1; }
kill "$ship_coord_pid" 2>/dev/null || true
wait "$ship_coord_pid" 2>/dev/null || true

echo "== tracing overhead on the task execution path must stay under 5%"
go test -run '^$' -bench 'BenchmarkExecTasks(Traced)?$' -benchtime 3x -count 3 \
  ./internal/job/ | tee "$workdir/bench.txt"
python3 - "$workdir/bench.txt" <<'EOF'
import re, sys
best = {}
for line in open(sys.argv[1]):
    m = re.match(r'(BenchmarkExecTasks(?:Traced)?)-?\S*\s+\d+\s+([\d.]+) ns/op', line)
    if m:
        name, ns = m.group(1), float(m.group(2))
        best[name] = min(best.get(name, float('inf')), ns)
plain = best.get('BenchmarkExecTasks')
traced = best.get('BenchmarkExecTasksTraced')
if not plain or not traced:
    sys.exit('bench output missing the ExecTasks pair: %r' % best)
ratio = traced / plain
print('min-of-3: untraced %.1fms, traced %.1fms, ratio %.3f' %
      (plain / 1e6, traced / 1e6, ratio))
if ratio > 1.05:
    sys.exit('tracing overhead %.1f%% exceeds the 5%% budget' % ((ratio - 1) * 100))
EOF

echo "OK: byte-identical CSVs, live mid-sweep worker metrics, merged journals analyzed, coordinator-collected trace matches local, federated metrics live, overhead within budget"
