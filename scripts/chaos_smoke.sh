#!/usr/bin/env bash
# Byzantine/chaos smoke test with real processes and real failures: a
# coordinator sweeps the gossip domain with full result auditing and
# hedged leases on, against three workers — one uploading deliberately
# corrupted values (it must end up quarantined), one behind a seeded
# fault-injecting transport (drops, delays, duplicates, corruption,
# spurious 500s), one honest. The coordinator is SIGKILLed mid-sweep
# and restarted over the same WAL + checkpoint directory; the workers
# ride out the outage via -reconnect. The final CSV must still be
# byte-identical to a clean single-process dsa-sweep. Run from the
# repo root; CI runs it on every push.
set -euo pipefail

workdir=$(mktemp -d)
bin="$workdir/bin"
mkdir -p "$bin"
token="smoke-chaos-secret"
cleanup() {
  kill -9 "${coord_pid:-}" "${byz_pid:-}" "${stormy_pid:-}" "${steady_pid:-}" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building dsa-grid and dsa-sweep"
go build -o "$bin/dsa-grid" ./cmd/dsa-grid
go build -o "$bin/dsa-sweep" ./cmd/dsa-sweep

# Same sweep shape as grid_smoke: 36 gossip points, chunk 1 => 72
# tasks, sized to run for several seconds so the coordinator kill
# lands mid-sweep.
sweep_flags=(-domain gossip -stride 6 -peers 16 -rounds 800 -perfruns 3
             -encruns 1 -opponents 8 -seed 11 -chunk 1)
addr="127.0.0.1:18439"
url="http://$addr"
serve_flags=("${sweep_flags[@]}" -preset quick -checkpoint-dir "$workdir/ckpt"
             -lease-ttl 2s -audit-rate 1.0 -hedge -once -out "$workdir/grid.csv"
             -auth-token "$token")

echo "== single-process reference sweep"
"$bin/dsa-sweep" "${sweep_flags[@]}" -preset quick -out "$workdir/reference.csv"

echo "== starting coordinator (audit-rate 1.0, hedging, WAL on)"
"$bin/dsa-grid" serve -addr "$addr" "${serve_flags[@]}" \
  >"$workdir/coordinator1.log" 2>&1 &
coord_pid=$!
for _ in $(seq 1 50); do
  curl -sf "$url/v1/jobs" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$url/v1/jobs" >/dev/null

echo "== starting 3 workers: byzantine, chaotic transport, honest"
# Every worker tolerates 30s of coordinator outage, so the SIGKILL +
# restart below is invisible to them. The byzantine one corrupts every
# upload; with -audit-rate 1.0 its first audited task must get it
# quarantined, its results expunged and recomputed by the others.
"$bin/dsa-grid" work -coordinator "$url" -name byz -workers 1 \
  -auth-token "$token" -reconnect 30s -chaos-byzantine \
  >"$workdir/byz.log" 2>&1 &
byz_pid=$!
"$bin/dsa-grid" work -coordinator "$url" -name stormy -workers 1 \
  -auth-token "$token" -reconnect 30s \
  -chaos-transport "seed=7,drop=0.05,delay=0.1:20ms,dup=0.05,corrupt=0.05,err500=0.05" \
  >"$workdir/stormy.log" 2>&1 &
stormy_pid=$!
"$bin/dsa-grid" work -coordinator "$url" -name steady -workers 2 \
  -auth-token "$token" -reconnect 30s \
  >"$workdir/steady.log" 2>&1 &
steady_pid=$!

job_id=$(curl -sf "$url/v1/jobs" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
echo "== waiting for progress on job $job_id, then SIGKILLing the coordinator"
for _ in $(seq 1 200); do
  done_tasks=$(curl -sf "$url/v1/jobs/$job_id/progress" 2>/dev/null \
    | grep -o '"done_tasks":[0-9]*' | cut -d: -f2 || true)
  [ "${done_tasks:-0}" -ge 4 ] && break
  sleep 0.1
done
if [ "${done_tasks:-0}" -lt 4 ] || [ "${done_tasks:-0}" -ge 60 ]; then
  echo "coordinator kill window missed (done=${done_tasks:-0}/72)" >&2
  exit 1
fi
kill -9 "$coord_pid"
echo "coordinator killed at $done_tasks/72 tasks"

echo "== restarting the coordinator over the same WAL + checkpoints"
"$bin/dsa-grid" serve -addr "$addr" "${serve_flags[@]}" \
  >"$workdir/coordinator2.log" 2>&1 &
coord_pid=$!
for _ in $(seq 1 50); do
  curl -sf "$url/v1/jobs" >/dev/null 2>&1 && break
  sleep 0.2
done
job_id2=$(curl -sf "$url/v1/jobs" | grep -o '"id":"[^"]*"' | head -1 | cut -d'"' -f4)
if [ "$job_id2" != "$job_id" ]; then
  echo "job ID changed across the crash: $job_id vs $job_id2" >&2
  exit 1
fi
grep -q "replayed" "$workdir/coordinator2.log" || sleep 0.5

echo "== waiting for the byzantine worker to be quarantined"
quarantined=""
for _ in $(seq 1 300); do
  if curl -sf "$url/metrics" 2>/dev/null \
    | grep -Eq '^grid_worker_quarantined\{worker="byz"\} 1'; then
    quarantined=yes
    break
  fi
  sleep 0.2
done
if [ -z "$quarantined" ]; then
  echo "worker 'byz' never showed up quarantined in /metrics" >&2
  curl -sf "$url/metrics" | grep -E '^grid_(worker_quarantined|quarantines)' >&2 || true
  exit 1
fi
echo "== worker 'byz' is quarantined"

echo "== waiting for the honest workers + coordinator to finish"
# The byzantine worker exits non-zero on its quarantine verdict — that
# is the expected outcome, not a smoke failure.
wait "$stormy_pid"
wait "$steady_pid"
wait "$coord_pid"
byz_rc=0
wait "$byz_pid" || byz_rc=$?
if [ "$byz_rc" -eq 0 ]; then
  echo "the byzantine worker exited 0 — it was never told about its quarantine" >&2
  exit 1
fi
grep -q "quarantined" "$workdir/byz.log" || {
  echo "byzantine worker's log never mentions its quarantine verdict" >&2
  cat "$workdir/byz.log" >&2
  exit 1
}

echo "== comparing grid CSV against the single-process reference"
cmp "$workdir/reference.csv" "$workdir/grid.csv"

# The quarantine verdict itself must be in a coordinator log.
if ! grep -hq "QUARANTINED" "$workdir/coordinator1.log" "$workdir/coordinator2.log"; then
  echo "no coordinator ever logged the quarantine verdict" >&2
  exit 1
fi
echo "OK: byte-identical scores despite a byzantine worker, transport chaos and a coordinator kill -9"
