#!/usr/bin/env bash
# bench_compare.sh — diff a bench artifact against the committed
# baseline, starting the cross-PR perf trajectory.
#
# Usage: bench_compare.sh [BENCH_PR6.json] [baseline.txt]
#
# The artifact is the test2json stream CI tees from `go test -bench
# -json` (one JSON object per line). This script extracts the
# benchmark result lines into the standard benchstat-comparable text
# form (name <iters> <ns/op> ns/op), prints that form, and compares
# per-benchmark ns/op against the committed baseline
# (scripts/bench_baseline.txt, same text form — regenerate it with
# this script's -extract mode whenever a PR intentionally moves the
# floor).
#
# The comparison is ADVISORY: regressions beyond the threshold print
# prominent warnings but never fail the build — -benchtime=1x CI
# numbers are too noisy for a hard gate (scripts/perf_smoke.sh is the
# hard gate, with a paired in-run baseline). Exit is non-zero only for
# parse failures.
set -euo pipefail

THRESHOLD="${THRESHOLD:-1.20}" # warn when new/old exceeds this

# extract <file.json> — test2json stream to benchstat-comparable text.
# A benchmark's result line can be split across several Output events
# (test2json flushes mid-line), so reassemble each package's output
# stream first, then scan it for result lines.
extract() {
  awk '
    {
      pkg = ""
      if (match($0, /"Package":"[^"]*"/)) pkg = substr($0, RSTART + 11, RLENGTH - 12)
      if (match($0, /"Output":".*"}/)) {
        buf[pkg] = buf[pkg] substr($0, RSTART + 10, RLENGTH - 12)
      }
    }
    END {
      for (p in buf) {
        s = buf[p]
        gsub(/\\t/, " ", s)
        gsub(/\\n/, "\n", s)
        n = split(s, lines, "\n")
        for (i = 1; i <= n; i++)
          if (lines[i] ~ /^Benchmark/ && lines[i] ~ /ns\/op/)
            print lines[i]
      }
    }
  ' "$1" | awk '{ print $1, $2, $3, "ns/op" }' | sort
}

if [ "${1:-}" = "-extract" ]; then
  extract "${2:?usage: bench_compare.sh -extract BENCH.json}"
  exit 0
fi

ARTIFACT="${1:-BENCH_PR6.json}"
BASELINE="${2:-$(dirname "$0")/bench_baseline.txt}"

if [ ! -f "$ARTIFACT" ]; then
  echo "bench_compare: artifact $ARTIFACT not found" >&2
  exit 1
fi

NEW="$(mktemp)"
trap 'rm -f "$NEW"' EXIT
extract "$ARTIFACT" >"$NEW"
if [ ! -s "$NEW" ]; then
  echo "bench_compare: no benchmark lines found in $ARTIFACT" >&2
  exit 1
fi

echo "== benchstat-comparable results from $ARTIFACT =="
cat "$NEW"

if [ ! -f "$BASELINE" ]; then
  echo "bench_compare: no baseline at $BASELINE; skipping comparison" >&2
  exit 0
fi

echo
echo "== comparison vs $BASELINE (advisory, warn at >$(awk -v t="$THRESHOLD" 'BEGIN{printf "%.0f", (t-1)*100}')% regression) =="
awk -v threshold="$THRESHOLD" '
  # Strip the -<GOMAXPROCS> suffix so runs from different machines align.
  function base(n) { sub(/-[0-9]+$/, "", n); return n }
  NR == FNR { old[base($1)] = $3; next }
  {
    n = base($1)
    if (!(n in old)) { printf "NEW       %-40s %12.0f ns/op\n", n, $3; next }
    ratio = $3 / old[n]
    flag = (ratio > threshold) ? "REGRESSED" : (ratio < 1/threshold ? "IMPROVED " : "ok       ")
    printf "%s %-40s %12.0f -> %12.0f ns/op  (%.2fx)\n", flag, n, old[n], $3, ratio
    if (ratio > threshold) warned++
  }
  END {
    if (warned) printf "\nbench_compare: WARNING — %d benchmark(s) regressed beyond the threshold (advisory)\n", warned
    else print "\nbench_compare: no regressions beyond the threshold"
  }
' "$BASELINE" "$NEW"
