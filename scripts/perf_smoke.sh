#!/usr/bin/env bash
# perf_smoke.sh — enforce the PR 5 performance floor in CI.
#
# Runs the paired cold tournament-sweep benchmarks (optimized
# cyclesim vs the frozen pre-optimization reference in
# internal/cyclesim/refsim) and requires the optimized implementation
# to be at least MIN_SPEEDUP times faster. Byte-identity of the two is
# enforced separately by the golden-parity suites; this script only
# guards the speed claim so it is re-measured on every push instead of
# decaying into a stale README number.
#
# Also re-runs the steady-state allocation pins (0 allocs/round for
# the cyclesim round loop, 0 allocs/second for the swarm transfer
# loop) so the floor cannot be met by trading allocations for time,
# and reports the swarm run pair (advisory — the swarm is not on the
# sweep hot path).
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${MIN_SPEEDUP:-2.0}"
BENCHTIME="${BENCHTIME:-3x}"
COUNT="${COUNT:-3}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "== allocation pins =="
go test ./internal/cyclesim -run 'TestRoundLoopAllocFree|TestPooledRunAllocs' -count=1
go test ./internal/swarm -run 'TestTransferLoopAllocFree|TestPooledRunAllocsSwarm' -count=1

echo "== cold tournament sweep: optimized vs frozen reference =="
go test -run '^$' \
  -bench 'BenchmarkTournamentCold$|BenchmarkTournamentColdReference$|BenchmarkSwarmRun$|BenchmarkSwarmRunReference$' \
  -benchtime="$BENCHTIME" -count="$COUNT" . | tee "$OUT"

# Best (minimum) ns/op per benchmark: CI machines are noisy upward,
# never downward.
min_ns() {
  awk -v name="$1" '$1 ~ "^"name"(-[0-9]+)?$" { if (min == "" || $3 < min) min = $3 } END { print min }' "$OUT"
}

OPT=$(min_ns BenchmarkTournamentCold)
REF=$(min_ns BenchmarkTournamentColdReference)
SOPT=$(min_ns BenchmarkSwarmRun)
SREF=$(min_ns BenchmarkSwarmRunReference)
if [ -z "$OPT" ] || [ -z "$REF" ]; then
  echo "perf_smoke: FAILED to parse benchmark output" >&2
  exit 1
fi

RATIO=$(awk -v r="$REF" -v o="$OPT" 'BEGIN { printf "%.2f", r / o }')
SRATIO=$(awk -v r="$SREF" -v o="$SOPT" 'BEGIN { if (o != "") printf "%.2f", r / o }')
echo "tournament cold sweep: reference ${REF} ns/op, optimized ${OPT} ns/op -> ${RATIO}x (floor ${MIN_SPEEDUP}x)"
[ -n "$SRATIO" ] && echo "swarm run (advisory):  reference ${SREF} ns/op, optimized ${SOPT} ns/op -> ${SRATIO}x"

if awk -v r="$RATIO" -v m="$MIN_SPEEDUP" 'BEGIN { exit !(r + 0 >= m + 0) }'; then
  echo "perf_smoke: PASS (${RATIO}x >= ${MIN_SPEEDUP}x)"
else
  echo "perf_smoke: FAIL — cold tournament speedup ${RATIO}x is below the ${MIN_SPEEDUP}x floor" >&2
  exit 1
fi
