#!/usr/bin/env bash
# Score-cache smoke test with real processes: a dsa-sweep runs cold
# with -cache-dir, runs again warm on the same directory, and a third
# time with no cache at all — all three CSVs must be byte-identical
# (caching may never change values). The gossip and delivery domains
# both go through that discipline against one shared cache directory.
# Then the warm/cold explorer benchmark pair must show the PR's
# headline >= 5x speedup. Run from the repo root; CI runs it on every
# push.
set -euo pipefail

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

echo "== building dsa-sweep and dsa-report"
go build -o "$workdir/dsa-sweep" ./cmd/dsa-sweep
go build -o "$workdir/dsa-report" ./cmd/dsa-report

# A small gossip sweep: 36 points, real simulation, seconds not minutes.
sweep_flags=(-domain gossip -preset quick -stride 6 -peers 12 -rounds 200
             -perfruns 2 -encruns 1 -opponents 6 -seed 11)

echo "== uncached reference sweep"
"$workdir/dsa-sweep" "${sweep_flags[@]}" -out "$workdir/reference.csv"

echo "== cold sweep into an empty cache"
"$workdir/dsa-sweep" "${sweep_flags[@]}" -cache-dir "$workdir/cache" \
  -out "$workdir/cold.csv" 2>"$workdir/cold.log"

echo "== warm sweep over the filled cache"
"$workdir/dsa-sweep" "${sweep_flags[@]}" -cache-dir "$workdir/cache" \
  -out "$workdir/warm.csv" 2>"$workdir/warm.log"

echo "== comparing all three CSVs"
cmp "$workdir/reference.csv" "$workdir/cold.csv"
cmp "$workdir/reference.csv" "$workdir/warm.csv"

# The warm run must actually have hit the cache (not silently recomputed).
if ! grep -Eq "score cache: [1-9][0-9]* hits, 0 misses" "$workdir/warm.log"; then
  echo "warm run did not serve every score from the cache:" >&2
  cat "$workdir/warm.log" >&2
  exit 1
fi

# The delivery domain goes through the same discipline — and shares
# the gossip sweep's cache directory, proving the keyer isolates
# domains in a real multi-domain store (the warm run must still be
# all hits / 0 misses for its own entries, never poisoned by gossip's).
delivery_flags=(-domain delivery -preset quick -stride 8 -peers 8 -rounds 240
                -perfruns 2 -encruns 1 -seed 11)

echo "== uncached delivery reference sweep"
"$workdir/dsa-sweep" "${delivery_flags[@]}" -out "$workdir/delivery-reference.csv"

echo "== cold delivery sweep into the shared cache"
"$workdir/dsa-sweep" "${delivery_flags[@]}" -cache-dir "$workdir/cache" \
  -out "$workdir/delivery-cold.csv" 2>"$workdir/delivery-cold.log"

echo "== warm delivery sweep over the shared cache"
"$workdir/dsa-sweep" "${delivery_flags[@]}" -cache-dir "$workdir/cache" \
  -out "$workdir/delivery-warm.csv" 2>"$workdir/delivery-warm.log"

echo "== comparing all three delivery CSVs"
cmp "$workdir/delivery-reference.csv" "$workdir/delivery-cold.csv"
cmp "$workdir/delivery-reference.csv" "$workdir/delivery-warm.csv"

if ! grep -Eq "score cache: [1-9][0-9]* hits, 0 misses" "$workdir/delivery-warm.log"; then
  echo "warm delivery run did not serve every score from the cache:" >&2
  cat "$workdir/delivery-warm.log" >&2
  exit 1
fi

echo "== cache stats view"
"$workdir/dsa-report" -cache-dir "$workdir/cache" cache

echo "== warm-vs-cold explorer benchmark (headline: >= 5x)"
go test -run '^$' -bench 'BenchmarkExplorer(Cold|Warm)Cache$' -benchtime=3x . \
  | tee "$workdir/bench.txt"
cold=$(awk '/BenchmarkExplorerColdCache/ {print $3}' "$workdir/bench.txt")
warm=$(awk '/BenchmarkExplorerWarmCache/ {print $3}' "$workdir/bench.txt")
if [ -z "$cold" ] || [ -z "$warm" ]; then
  echo "could not parse benchmark output" >&2
  exit 1
fi
ratio=$(( cold / warm ))
echo "cold ${cold} ns/op, warm ${warm} ns/op => ${ratio}x"
if [ "$ratio" -lt 5 ]; then
  echo "warm explorer run is only ${ratio}x faster than cold; the PR promises >= 5x" >&2
  exit 1
fi
echo "OK: byte-identical CSVs cold/warm/uncached, and a ${ratio}x warm explorer speedup"
