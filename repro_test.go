package repro

import (
	"context"
	"reflect"
	"testing"
)

func TestFacadeProtocols(t *testing.T) {
	ps := Protocols()
	if len(ps) != 3270 {
		t.Fatalf("space size = %d, want 3270", len(ps))
	}
	named := Named()
	if _, ok := named["Birds"]; !ok {
		t.Error("Birds missing from Named()")
	}
}

func TestFacadePRA(t *testing.T) {
	cfg := QuickConfig()
	cfg.Peers, cfg.Rounds, cfg.Opponents, cfg.PerfRuns = 12, 40, 4, 1
	res, err := RunPRA([]Protocol{Named()["BitTorrent"], Named()["Freerider"]}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores.Performance) != 2 {
		t.Fatal("scores missing")
	}
	if res.Scores.Performance[1] >= res.Scores.Performance[0] {
		t.Error("freerider should underperform BitTorrent")
	}
}

func TestFacadeSwarm(t *testing.T) {
	cfg := DefaultSwarm()
	cfg.FileKiB, cfg.PieceKiB = 512, 128
	pts, err := SwarmEncounter(Birds, BT, []float64{0.5}, 8, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].CountA != 4 {
		t.Fatalf("points = %+v", pts)
	}
	if PaperConfig().Peers != 50 {
		t.Error("paper config wrong")
	}
}

func TestFacadeGenericSweep(t *testing.T) {
	if len(Domains()) < 2 {
		t.Fatalf("Domains() = %d domains, want at least swarming and gossip", len(Domains()))
	}
	d, err := DomainByName("gossip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Peers: 6, Rounds: 20, PerfRuns: 1, EncounterRuns: 1, Opponents: 2, Seed: 3}
	pts := d.Space().Enumerate()[:8]
	dir := t.TempDir()
	scores, err := RunSweepContext(context.Background(), d, pts, cfg, SweepOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Measures() {
		if len(scores.Measure(m)) != len(pts) {
			t.Fatalf("measure %s has %d values, want %d", m, len(scores.Measure(m)), len(pts))
		}
	}
	reloaded, err := LoadSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scores, reloaded) {
		t.Fatal("LoadSweep does not match the live sweep")
	}
}
