package repro

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

func TestFacadeProtocols(t *testing.T) {
	ps := Protocols()
	if len(ps) != 3270 {
		t.Fatalf("space size = %d, want 3270", len(ps))
	}
	named := Named()
	if _, ok := named["Birds"]; !ok {
		t.Error("Birds missing from Named()")
	}
}

func TestFacadePRA(t *testing.T) {
	cfg := QuickConfig()
	cfg.Peers, cfg.Rounds, cfg.Opponents, cfg.PerfRuns = 12, 40, 4, 1
	res, err := RunPRA([]Protocol{Named()["BitTorrent"], Named()["Freerider"]}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores.Performance) != 2 {
		t.Fatal("scores missing")
	}
	if res.Scores.Performance[1] >= res.Scores.Performance[0] {
		t.Error("freerider should underperform BitTorrent")
	}
}

func TestFacadeSwarm(t *testing.T) {
	cfg := DefaultSwarm()
	cfg.FileKiB, cfg.PieceKiB = 512, 128
	pts, err := SwarmEncounter(Birds, BT, []float64{0.5}, 8, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].CountA != 4 {
		t.Fatalf("points = %+v", pts)
	}
	if PaperConfig().Peers != 50 {
		t.Error("paper config wrong")
	}
}

func TestFacadeGenericSweep(t *testing.T) {
	if len(Domains()) < 2 {
		t.Fatalf("Domains() = %d domains, want at least swarming and gossip", len(Domains()))
	}
	d, err := DomainByName("gossip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Peers: 6, Rounds: 20, PerfRuns: 1, EncounterRuns: 1, Opponents: 2, Seed: 3}
	pts := d.Space().Enumerate()[:8]
	dir := t.TempDir()
	scores, err := RunSweepContext(context.Background(), d, pts, cfg, SweepOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range d.Measures() {
		if len(scores.Measure(m)) != len(pts) {
			t.Fatalf("measure %s has %d values, want %d", m, len(scores.Measure(m)), len(pts))
		}
	}
	reloaded, err := LoadSweep(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scores, reloaded) {
		t.Fatal("LoadSweep does not match the live sweep")
	}
}

// TestFacadeGrid runs a whole grid through the facade: ServeGrid hosts
// the coordinator on a loopback port, two GridSweep workers join over
// HTTP, and both sides must return scores byte-identical to a plain
// RunSweepContext of the same sweep.
func TestFacadeGrid(t *testing.T) {
	d, err := DomainByName("gossip")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Peers: 6, Rounds: 20, PerfRuns: 1, EncounterRuns: 1, Opponents: 2, Seed: 3}
	pts := d.Space().Enumerate()[:8]
	ctx := context.Background()
	want, err := RunSweepContext(ctx, d, pts, cfg, SweepOptions{Chunk: 2})
	if err != nil {
		t.Fatal(err)
	}

	addrC := make(chan string, 1)
	type result struct {
		scores *DomainScores
		err    error
	}
	served := make(chan result, 1)
	go func() {
		s, err := ServeGrid(ctx, "127.0.0.1:0", d, pts, cfg, GridOptions{
			Chunk: 2, OnListen: func(addr string) { addrC <- addr },
		})
		served <- result{s, err}
	}()
	url := "http://" + <-addrC

	workerDone := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			s, err := GridSweep(ctx, url, 2)
			workerDone <- result{s, err}
		}()
	}
	wantJSON, _ := json.Marshal(want)
	for i := 0; i < 2; i++ {
		r := <-workerDone
		if r.err != nil {
			t.Fatalf("GridSweep: %v", r.err)
		}
		if got, _ := json.Marshal(r.scores); string(got) != string(wantJSON) {
			t.Fatal("GridSweep scores are not byte-identical to RunSweep")
		}
	}
	r := <-served
	if r.err != nil {
		t.Fatalf("ServeGrid: %v", r.err)
	}
	if got, _ := json.Marshal(r.scores); string(got) != string(wantJSON) {
		t.Fatal("ServeGrid scores are not byte-identical to RunSweep")
	}
}
