// Quickstart: run the PRA quantification over a handful of named
// protocols and print their Performance / Robustness / Aggressiveness.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	// A small protocol lineup: the paper's named protocols.
	named := repro.Named()
	names := make([]string, 0, len(named))
	for name := range named {
		names = append(names, name)
	}
	sort.Strings(names)
	protocols := make([]repro.Protocol, len(names))
	for i, name := range names {
		protocols[i] = named[name]
	}

	// Quick preset: small populations, sampled opponents — minutes of
	// laptop time rather than cluster-hours. See repro.PaperConfig for
	// the full Section 4.3 scale.
	cfg := repro.QuickConfig()
	cfg.Opponents = 40

	res, err := repro.RunPRA(protocols, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PRA quantification (quick preset):")
	fmt.Printf("%-16s %-22s %12s %11s %11s %15s\n",
		"name", "protocol", "raw KiB/s", "Performance", "Robustness", "Aggressiveness")
	for i, name := range names {
		fmt.Printf("%-16s %-22s %12.1f %11.3f %11.3f %15.3f\n",
			name, protocols[i].String(),
			res.Scores.RawPerformance[i], res.Scores.Performance[i],
			res.Scores.Robustness[i], res.Scores.Aggressiveness[i])
	}

	// The Robustness/Aggressiveness correlation of Figure 8.
	_, _, r, err := res.Fig8()
	if err == nil {
		fmt.Printf("\nPearson(Robustness, Aggressiveness) = %.3f (paper: 0.96)\n", r)
	}
}
