// Birds: the Section 2 story in one program. Models BitTorrent as a
// strategy in an iterated game between bandwidth classes, shows the
// opportunity-cost payoff modification that produces the Birds
// protocol, and verifies the Appendix equilibrium claims numerically.
//
//	go run ./examples/birds
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/analytic"
	"repro/internal/game"
)

func main() {
	const fast, slow = 100.0, 20.0

	// Figure 1(a): under BitTorrent's implicit payoffs the slow peer's
	// dominant strategy is to cooperate with the fast peer — the
	// Dictator-game flavour the paper calls the BitTorrent Dilemma.
	bt, err := game.BitTorrentDilemma(fast, slow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bt)
	weakD, _ := bt.DominantRow(game.Defect)
	weakC, _ := bt.DominantCol(game.Cooperate)
	fmt.Printf("fast defects (dominant: %v), slow cooperates (dominant: %v)\n\n", weakD, weakC)

	// Figure 1(c): charging the slow peer the opportunity cost of
	// cross-class cooperation flips its dominant strategy to defection
	// — "birds of a feather stick together".
	birds, err := game.BirdsDilemma(fast, slow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(birds)
	_, strict := birds.DominantCol(game.Defect)
	weakD2, _ := birds.DominantCol(game.Defect)
	fmt.Printf("slow now defects too (dominant: %v, strict: %v)\n\n", weakD2, strict)

	// The iterated view: a fast AllD free-rides on a slow AllC in the
	// repeated BitTorrent Dilemma — Locher et al.'s exploit in one line.
	rng := rand.New(rand.NewSource(1))
	match := game.PlayMatch(bt, game.AllD{}, game.AllC{}, 100, rng)
	fmt.Printf("iterated BT Dilemma over %d rounds: fast AllD scores %.0f, slow AllC scores %.0f\n\n",
		match.Rounds, match.RowScore, match.ColScore)

	// Section 2.2 / Appendix: expected game wins and equilibrium
	// verdicts across the parameter grid.
	p := analytic.Params{NA: 20, NB: 15, NC: 15, Ur: 4}
	btW, err := analytic.BitTorrent(p)
	if err != nil {
		log.Fatal(err)
	}
	birdsW, err := analytic.Birds(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected wins per period (NA=%d NB=%d NC=%d Ur=%d):\n", p.NA, p.NB, p.NC, p.Ur)
	fmt.Printf("  BitTorrent: %.3f   Birds: %.3f\n", btW.Total(), birdsW.Total())

	grid := analytic.DefaultGrid()
	vBT, err := analytic.CheckBTNash(grid)
	if err != nil {
		log.Fatal(err)
	}
	vBirds, err := analytic.CheckBirdsNash(grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAppendix verdicts over %d parameter configurations:\n", vBT.Checked)
	fmt.Printf("  a Birds deviant profits in a BT swarm in %d configs → BT is not a Nash equilibrium\n", vBT.Profitable)
	fmt.Printf("  a BT deviant profits in a Birds swarm in %d configs → Birds is a Nash equilibrium: %v\n",
		vBirds.Profitable, vBirds.IsEquilibrium())
}
