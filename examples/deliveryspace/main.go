// Deliveryspace: Design Space Analysis applied to the third domain —
// the swarm download-orchestration space built on internal/swarm and
// internal/bandwidth. The delivery package implements repro.Domain,
// and that is all it takes for its 576-strategy space to run on the
// same sharded, checkpointed job engine and heuristic explorers as
// the swarming and gossip sweeps: this program interrupts a sweep
// mid-run, resumes it, finishes it as a second shard, verifies the
// checkpoint reloads to the identical result, and then hill-climbs
// the space on the robustness measure through the generic explorer
// seam — zero delivery-specific engine code anywhere.
//
//	go run ./examples/deliveryspace
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"reflect"
	"sort"

	"repro"
	"repro/internal/core"
	"repro/internal/delivery"
	"repro/internal/dsa"
)

func main() {
	domain, err := repro.DomainByName("delivery")
	if err != nil {
		log.Fatal(err)
	}
	space := domain.Space()
	fmt.Printf("delivery design space: %d strategies over %d dimensions\n",
		space.Size(), len(space.Dimensions))
	fmt.Printf("measures: %v\n\n", domain.Measures())

	cfg, err := domain.DefaultConfig("quick")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the demo snappy: a small swarm and short downloads.
	cfg.Peers, cfg.Rounds, cfg.PerfRuns = 8, 240, 2

	dir, err := os.MkdirTemp("", "delivery-sweep-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Shard 0 of 2, interrupted after a few tasks: cancel the context
	// mid-run, exactly like Ctrl-C on dsa-sweep. Completed tasks are
	// journalled in dir.
	ctx, cancel := context.WithCancel(context.Background())
	opts := repro.SweepOptions{Dir: dir, Shards: 2, ShardIndex: 0, Chunk: 16, Workers: 1}
	interrupted := 0
	optsInterrupt := opts
	optsInterrupt.Progress = func(p repro.SweepProgress) {
		interrupted = p.FreshTasks
		if p.FreshTasks >= 3 {
			cancel()
		}
	}
	_, err = repro.RunSweepContext(ctx, domain, nil, cfg, optsInterrupt)
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected interruption, got %v", err)
	}
	fmt.Printf("shard 0 interrupted after %d tasks — journalled in %s\n", interrupted, dir)

	// Resume shard 0: finished tasks are skipped, the rest of this
	// shard's share runs, and the result is still incomplete because
	// shard 1's tasks are outstanding.
	_, err = repro.RunSweepContext(context.Background(), domain, nil, cfg, opts)
	if !errors.Is(err, repro.ErrSweepIncomplete) {
		log.Fatalf("expected incomplete shard, got %v", err)
	}
	fmt.Printf("shard 0 resumed and finished its share: %v\n", err)

	// Shard 1 finds every shard-0 task checkpointed, runs its own, and
	// assembles the full scores.
	opts.ShardIndex = 1
	scores, err := repro.RunSweepContext(context.Background(), domain, nil, cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 1 assembled the merged sweep: %d points × %d measures\n\n",
		len(scores.Points), len(scores.Values))

	// The checkpoint alone reproduces the identical result — this is
	// what dsa-report -domain delivery merge does.
	reloaded, err := repro.LoadSweep(dir)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(scores, reloaded) {
		log.Fatal("checkpoint reload does not match the assembled sweep")
	}
	fmt.Println("checkpoint reload matches the live merge exactly")

	robustness := scores.Measure(delivery.MeasureRobustness)
	meanTime := scores.Measure(delivery.MeasureMeanTime)
	order := make([]int, len(scores.Points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return robustness[order[a]] > robustness[order[b]] })
	fmt.Println("\ntop 5 delivery strategies by robustness (normalised mean_time shown; 1 = fastest):")
	for _, i := range order[:5] {
		fmt.Printf("  robustness=%.3f mean_time=%.3f  %s\n",
			robustness[i], meanTime[i], domain.Label(scores.Points[i]))
	}
	worst := order[len(order)-1]
	fmt.Printf("worst: robustness=%.3f mean_time=%.3f  %s\n",
		robustness[worst], meanTime[worst], domain.Label(scores.Points[worst]))

	// The Section 7 explorers run on any registered domain: hill-climb
	// the raw robustness measure without sweeping the whole space.
	best, calls, err := dsa.HillClimb(domain, dsa.Weights{delivery.MeasureRobustness: 1},
		cfg, core.HillClimbConfig{Restarts: 3, MaxSteps: 30, Seed: 7}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhill climb on robustness: %s (objective %.3f) after %d of %d evaluations\n",
		domain.Label(best.Point), best.Score, calls, space.Size())
}
