// Customprotocol: using the library as a protocol designer would. Build
// a protocol variant by hand from the design-space dimensions, check it
// is inside the actualized space, and evaluate it against the paper's
// named protocols and a sample of the space.
//
//	go run ./examples/customprotocol
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/design"
	"repro/internal/pra"
)

func main() {
	// A designer's hunch: loyal ranking like Loyal-When-needed, but
	// with Prop Share reciprocation and a bigger partner set — trying
	// to combine the Section 4.4 robustness ingredients.
	custom := design.Protocol{
		Stranger:   design.WhenNeeded,
		H:          2,
		Candidate:  design.TFT,
		Ranking:    design.Loyal,
		K:          7,
		Allocation: design.PropShare,
	}
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom protocol %s (space ID %d):\n  %s\n\n",
		custom, design.ID(custom), custom.Describe())

	lineup := []repro.Protocol{
		custom,
		design.BitTorrent(),
		design.LoyalWhenNeeded(),
		design.MostRobustCandidate(),
		design.Freerider(),
	}
	labels := []string{"custom", "BitTorrent", "LoyalWhenNeeded", "MostRobust", "Freerider"}

	cfg := pra.Quick()
	cfg.Opponents = 50
	res, err := repro.RunPRA(lineup, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %11s %11s %15s\n", "protocol", "Performance", "Robustness", "Aggressiveness")
	for i, l := range labels {
		fmt.Printf("%-16s %11.3f %11.3f %15.3f\n",
			l, res.Scores.Performance[i], res.Scores.Robustness[i], res.Scores.Aggressiveness[i])
	}

	// Where does the custom protocol sit in the tournament against the
	// robust candidate, head to head?
	meanCustom, meanRobust, err := pra.Encounter(custom, design.MostRobustCandidate(), 0.5, cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhead-to-head 50/50 encounter vs MostRobust: custom %.1f KiB/s vs %.1f KiB/s\n",
		meanCustom, meanRobust)
}
