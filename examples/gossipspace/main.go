// Gossipspace: Design Space Analysis applied to a second domain — the
// gossip dissemination space sketched in Section 3.1 — through the
// generic sweep API. The gossip package implements repro.Domain, and
// that is all it takes for the full 216-protocol gossip sweep to run
// on the same sharded, checkpointed job engine as the 3270-protocol
// file-swarming sweep: this program interrupts a sweep mid-run,
// resumes it, finishes it as a second shard, and verifies that the
// checkpoint reloads to the identical result.
//
//	go run ./examples/gossipspace
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"reflect"
	"sort"

	"repro"
)

func main() {
	domain, err := repro.DomainByName("gossip")
	if err != nil {
		log.Fatal(err)
	}
	space := domain.Space()
	fmt.Printf("gossip design space: %d protocols over %d dimensions\n",
		space.Size(), len(space.Dimensions))
	fmt.Printf("measures: %v\n\n", domain.Measures())

	cfg, err := domain.DefaultConfig("quick")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the demo snappy: smaller populations, tiny opponent panel.
	cfg.Peers, cfg.Rounds, cfg.Opponents = 20, 80, 8

	dir, err := os.MkdirTemp("", "gossip-sweep-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Shard 0 of 2, interrupted after a few tasks: cancel the context
	// mid-run, exactly like Ctrl-C on dsa-sweep. Completed tasks are
	// journalled in dir.
	ctx, cancel := context.WithCancel(context.Background())
	opts := repro.SweepOptions{Dir: dir, Shards: 2, ShardIndex: 0, Chunk: 8, Workers: 1}
	interrupted := 0
	optsInterrupt := opts
	optsInterrupt.Progress = func(p repro.SweepProgress) {
		interrupted = p.FreshTasks
		if p.FreshTasks >= 3 {
			cancel()
		}
	}
	_, err = repro.RunSweepContext(ctx, domain, nil, cfg, optsInterrupt)
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("expected interruption, got %v", err)
	}
	fmt.Printf("shard 0 interrupted after %d tasks — journalled in %s\n", interrupted, dir)

	// Resume shard 0: finished tasks are skipped, the rest of this
	// shard's share runs, and the result is still incomplete because
	// shard 1's tasks are outstanding.
	_, err = repro.RunSweepContext(context.Background(), domain, nil, cfg, opts)
	if !errors.Is(err, repro.ErrSweepIncomplete) {
		log.Fatalf("expected incomplete shard, got %v", err)
	}
	fmt.Printf("shard 0 resumed and finished its share: %v\n", err)

	// Shard 1 finds every shard-0 task checkpointed, runs its own, and
	// assembles the full scores.
	opts.ShardIndex = 1
	scores, err := repro.RunSweepContext(context.Background(), domain, nil, cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 1 assembled the merged sweep: %d points × %d measures\n\n",
		len(scores.Points), len(scores.Values))

	// The checkpoint alone reproduces the identical result — this is
	// what dsa-report -domain gossip merge does.
	reloaded, err := repro.LoadSweep(dir)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(scores, reloaded) {
		log.Fatal("checkpoint reload does not match the assembled sweep")
	}
	fmt.Println("checkpoint reload matches the live merge exactly")

	coverage := scores.Measure("coverage")
	robustness := scores.Measure("robustness")
	order := make([]int, len(scores.Points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return coverage[order[a]] > coverage[order[b]] })
	fmt.Println("\ntop 5 gossip protocols by normalised coverage:")
	for _, i := range order[:5] {
		fmt.Printf("  coverage=%.3f robustness=%.3f  %s\n",
			coverage[i], robustness[i], domain.Label(scores.Points[i]))
	}
	worst := order[len(order)-1]
	fmt.Printf("worst: coverage=%.3f robustness=%.3f  %s\n",
		coverage[worst], robustness[worst], domain.Label(scores.Points[worst]))
}
