// Gossipspace: Design Space Analysis applied to a second domain — the
// gossip dissemination space sketched in Section 3.1. Parameterization
// and Actualization come from the gossip package; this program runs a
// performance sweep over all 216 gossip protocols and a small
// robustness check, demonstrating that the DSA method is domain
// agnostic (the paper's Section 7 future work).
//
//	go run ./examples/gossipspace
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/gossip"
)

func main() {
	space := gossip.Space()
	pts := space.Enumerate()
	fmt.Printf("gossip design space: %d protocols over %d dimensions\n\n",
		len(pts), len(space.Dimensions))

	opt := gossip.DefaultOptions()
	opt.Nodes = 0 // population size = len(protocols)

	// Performance sweep: homogeneous populations of 30 nodes.
	type scored struct {
		p    gossip.Protocol
		mean float64
	}
	results := make([]scored, 0, len(pts))
	for _, pt := range pts {
		p, err := gossip.FromPoint(pt)
		if err != nil {
			log.Fatal(err)
		}
		protos := make([]gossip.Protocol, 30)
		for i := range protos {
			protos[i] = p
		}
		res, err := gossip.Run(protos, opt)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, scored{p, res.Mean()})
	}
	sort.Slice(results, func(a, b int) bool { return results[a].mean > results[b].mean })

	fmt.Println("top 5 gossip protocols by coverage (rumours learned per node):")
	for _, r := range results[:5] {
		fmt.Printf("  %7.1f  %s\n", r.mean, r.p)
	}
	fmt.Println("bottom 3:")
	for _, r := range results[len(results)-3:] {
		fmt.Printf("  %7.1f  %s\n", r.mean, r.p)
	}

	// Robustness flavour: the best protocol invaded 50/50 by gossip
	// freeriders (FilterNone).
	best := results[0].p
	freerider := best
	freerider.Filter = gossip.FilterNone
	protos := make([]gossip.Protocol, 30)
	for i := range protos {
		if i%2 == 0 {
			protos[i] = best
		} else {
			protos[i] = freerider
		}
	}
	res, err := gossip.Run(protos, opt)
	if err != nil {
		log.Fatal(err)
	}
	coop := res.GroupMean(func(i int) bool { return i%2 == 0 })
	free := res.GroupMean(func(i int) bool { return i%2 != 0 })
	fmt.Printf("\n50/50 encounter, best protocol vs its freeriding variant:\n")
	fmt.Printf("  contributors learn %.1f rumours, freeriders %.1f\n", coop, free)
	if coop > free {
		fmt.Println("  → the selection function punishes freeriding, as in the P2P domain")
	}
}
