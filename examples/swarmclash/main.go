// Swarmclash: the Section 5 validation in miniature. Pits Birds
// against reference BitTorrent clients in a piece-level swarm at
// several compositions and prints average download times with 95%
// confidence intervals (Figure 9b).
//
//	go run ./examples/swarmclash
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultSwarm() // 5 MiB file, 128 KiB/s seeder, 10 s chokes

	fracs := []float64{0, 0.25, 0.5, 0.75, 1}
	const leechers, runs = 50, 10

	pts, err := repro.SwarmEncounter(repro.Birds, repro.BT, fracs, leechers, runs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Birds vs BitTorrent, %d leechers, %d runs per point:\n\n", leechers, runs)
	fmt.Printf("%10s %22s %22s\n", "frac Birds", "Birds avg time (s)", "BitTorrent avg time (s)")
	for _, p := range pts {
		birds, bt := "-", "-"
		if p.CountA > 0 {
			birds = fmt.Sprintf("%.1f ± %.1f", p.TimeA.Mean, p.TimeA.Half)
		}
		if p.CountA < leechers {
			bt = fmt.Sprintf("%.1f ± %.1f", p.TimeB.Mean, p.TimeB.Half)
		}
		fmt.Printf("%10.2f %22s %22s\n", p.FracA, birds, bt)
	}

	fmt.Println("\nLower is better; compare with Figure 9(b) of the paper.")
}
