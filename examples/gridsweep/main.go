// Gridsweep: the distributed sweep grid on one machine. A coordinator
// (repro.ServeGrid) owns the task list of a gossip sweep and serves it
// over HTTP; two workers (repro.GridSweep) lease tasks, compute them
// and upload results. The program then verifies the grid's assembled
// scores are byte-identical to a plain single-process repro.RunSweep
// of the same sweep — the grid's core guarantee, which also holds when
// workers are killed mid-run (their leases expire and the tasks are
// re-leased; see internal/grid).
//
// The same topology runs across machines with the CLI:
//
//	dsa-grid serve -addr :8437 -domain gossip -preset quick
//	dsa-grid work  -coordinator http://host:8437   # on each worker box
//
//	go run ./examples/gridsweep
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	domain, err := repro.DomainByName("gossip")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the demo snappy: a 36-protocol slice of the space, small sims.
	all := domain.Space().Enumerate()
	var pts []repro.SpacePoint
	for i := 0; i < len(all); i += 6 {
		pts = append(pts, all[i])
	}
	cfg := repro.SweepConfig{Peers: 10, Rounds: 60, PerfRuns: 1, EncounterRuns: 1, Opponents: 6, Seed: 11}

	fmt.Printf("single-process reference sweep: %d points...\n", len(pts))
	want, err := repro.RunSweepContext(context.Background(), domain, pts, cfg, repro.SweepOptions{Chunk: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("same sweep as a grid: 1 coordinator + 2 HTTP workers...")
	ctx := context.Background()
	addrC := make(chan string, 1)
	type result struct {
		scores *repro.DomainScores
		err    error
	}
	served := make(chan result, 1)
	go func() {
		s, err := repro.ServeGrid(ctx, "127.0.0.1:0", domain, pts, cfg, repro.GridOptions{
			Chunk:    3,
			OnListen: func(addr string) { addrC <- addr },
		})
		served <- result{s, err}
	}()
	url := "http://" + <-addrC
	fmt.Printf("coordinator listening on %s\n", url)

	workers := make(chan result, 2)
	for w := 0; w < 2; w++ {
		go func() {
			s, err := repro.GridSweep(ctx, url, 2)
			workers <- result{s, err}
		}()
	}
	for w := 0; w < 2; w++ {
		if r := <-workers; r.err != nil {
			log.Fatalf("worker: %v", r.err)
		}
	}
	r := <-served
	if r.err != nil {
		log.Fatalf("coordinator: %v", r.err)
	}

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(r.scores)
	if string(wantJSON) != string(gotJSON) {
		log.Fatal("grid scores differ from the single-process sweep")
	}
	fmt.Println("grid scores are byte-identical to the single-process sweep ✓")

	// Show what the sweep found: the most robust protocols.
	rob := r.scores.Measure("robustness")
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rob[order[a]] > rob[order[b]] })
	fmt.Println("\ntop 5 by robustness:")
	for _, i := range order[:5] {
		fmt.Printf("  robustness=%.3f coverage=%.3f  %s\n",
			rob[i], r.scores.Measure("coverage")[i], domain.Label(pts[i]))
	}
}
