// Command nash reproduces the Section 2 analysis: the BitTorrent
// Dilemma payoff structure (Figure 1), the expected-game-wins model of
// Section 2.2 for a worked example, and the Appendix verdicts that
// BitTorrent's TFT is not a Nash equilibrium while Birds is.
//
// Usage:
//
//	nash [-na 20] [-nb 15] [-nc 15] [-ur 4] [-f 100] [-s 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analytic"
	"repro/internal/game"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nash: ")
	var (
		na = flag.Int("na", 20, "peers in classes above c")
		nb = flag.Int("nb", 15, "peers in classes below c")
		nc = flag.Int("nc", 15, "peers in c's class")
		ur = flag.Int("ur", 4, "regular unchoke slots")
		f  = flag.Float64("f", 100, "fast peer upload speed")
		s  = flag.Float64("s", 20, "slow peer upload speed")
	)
	flag.Parse()

	// Figure 1: the games and their dominant strategies.
	bt, err := game.BitTorrentDilemma(*f, *s)
	if err != nil {
		log.Fatal(err)
	}
	birds, err := game.BirdsDilemma(*f, *s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1(a) — BitTorrent Dilemma (row=fast, col=slow):")
	fmt.Print(bt)
	describeDominance(bt)
	fmt.Println("\nFigure 1(c) — Birds payoffs:")
	fmt.Print(birds)
	describeDominance(birds)

	// Section 2.2: expected game wins for the worked example.
	p := analytic.Params{NA: *na, NB: *nb, NC: *nc, Ur: *ur}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	btW, err := analytic.BitTorrent(p)
	if err != nil {
		log.Fatal(err)
	}
	birdsW, err := analytic.Birds(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSection 2.2 expected game wins (NA=%d NB=%d NC=%d Ur=%d, Nr=%d):\n",
		p.NA, p.NB, p.NC, p.Ur, p.Nr())
	tbl := report.NewTable("protocol", "Er[A]", "E[A]", "Er[B]", "E[B]", "Er[C]", "E[C]", "total")
	tbl.Add("BitTorrent", btW.RecipA, btW.FreeA, btW.RecipB, btW.FreeB, btW.RecipC, btW.FreeC, btW.Total())
	tbl.Add("Birds", birdsW.RecipA, birdsW.FreeA, birdsW.RecipB, birdsW.FreeB, birdsW.RecipC, birdsW.FreeC, birdsW.Total())
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Appendix: deviation analysis at the example point and over the grid.
	dev, err := analytic.BirdsDeviantInBT(p)
	if err != nil {
		log.Fatal(err)
	}
	dev2, err := analytic.BTDeviantInBirds(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAppendix deviations at this configuration:\n")
	fmt.Printf("  Birds deviant in BT swarm:  deviant %.4f vs resident %.4f  (gain %+.4f)\n",
		dev.Deviant.Total(), dev.Resident.Total(), dev.Gain())
	fmt.Printf("  BT deviant in Birds swarm:  deviant %.4f vs resident %.4f  (gain %+.4f)\n",
		dev2.Deviant.Total(), dev2.Resident.Total(), dev2.Gain())

	grid := analytic.DefaultGrid()
	vBT, err := analytic.CheckBTNash(grid)
	if err != nil {
		log.Fatal(err)
	}
	vBirds, err := analytic.CheckBirdsNash(grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGrid verdicts over %d configurations:\n", vBT.Checked)
	fmt.Printf("  BitTorrent: profitable Birds deviation in %d/%d configs → NOT a Nash equilibrium\n",
		vBT.Profitable, vBT.Checked)
	fmt.Printf("  Birds:      profitable BT deviation in %d/%d configs → Nash equilibrium: %v\n",
		vBirds.Profitable, vBirds.Checked, vBirds.IsEquilibrium())
}

func describeDominance(g *game.Bimatrix) {
	for _, side := range []struct {
		name string
		dom  func(game.Action) (bool, bool)
	}{
		{"fast (row)", g.DominantRow},
		{"slow (col)", g.DominantCol},
	} {
		for _, a := range []game.Action{game.Cooperate, game.Defect} {
			if weak, strict := side.dom(a); weak {
				kind := "weakly"
				if strict {
					kind = "strictly"
				}
				fmt.Printf("  %s: %s %s dominant\n", side.name, a, kind)
			}
		}
	}
	fmt.Printf("  pure Nash equilibria: %v\n", g.PureNash())
}
