// Command dsa-report renders sweep reports for any registered domain.
// For the swarming domain it reproduces the paper's figures and tables
// from a dsa-sweep CSV (Figures 2-8 and Table 3) or by running the
// extra simulations they need (90-10 validation, churn sensitivity);
// for every other domain it renders the generic reports (top, scatter)
// from the domain CSV.
//
// Usage:
//
//	dsa-report -in results.csv fig2|fig3|fig4|fig5|fig6|fig7|fig8|table3|top
//	dsa-report -checkpoint DIR fig2|...|top
//	dsa-report -checkpoint DIR -out results.csv merge
//	dsa-report -coordinator http://host:8437 [-job ID] fig2|...|top|merge
//	dsa-report [-preset quick] [-stride N] validate|churn
//	dsa-report -domain gossip|delivery [-in results.csv | -checkpoint DIR | -coordinator URL] top|scatter
//	dsa-report -domain gossip|delivery -checkpoint DIR -out results.csv merge
//	dsa-report -cache-dir DIR cache
//	dsa-report -coordinator http://host:8437 cache
//	dsa-report trace DIR|URL [-job ID] [-merged out.jsonl]
//
// -checkpoint reads the scores straight out of a dsa-sweep checkpoint
// directory (the merged manifests of one or more shard processes)
// instead of a CSV; merge additionally writes the assembled scores to
// the domain's CSV for downstream tooling. To merge shards that ran on
// separate machines, copy every shard dir's manifest-*.jsonl and
// task-*.json next to one spec.json first.
//
// -coordinator fetches the assembled scores live from a dsa-grid
// coordinator's results API instead of any local file — no copying at
// all. -job selects the job; by default the first job of the report's
// -domain is used. An incomplete job is reported as an error with its
// progress.
//
// The cache report inspects a content-addressed score cache: with
// -cache-dir it opens the local store (read-only — entries, on-disk
// bytes, records dropped as corrupt), with -coordinator it fetches the
// live counters from GET /v1/cache (hits, misses, tasks served without
// dispatch).
//
// The trace report merges every trace-*.jsonl span journal in DIR —
// however many sweep shards and grid workers appended there — onto one
// timeline and renders where the time went: critical path, per-measure
// task latency with histograms, straggler tasks, cache-hit attribution
// and per-worker utilization. Journals are crash-tolerant: a torn
// final line (the writer died mid-append) is skipped, not fatal.
// Given a coordinator URL (http:// or https://) instead of a
// directory, the report fetches the journals the coordinator collected
// from trace-shipping workers (GET /v1/trace) and renders the same
// analysis — no copying. -job narrows it to one job's trace; -merged
// additionally writes the canonically merged journal to a file.
//
// -cpuprofile / -memprofile write pprof profiles of the report itself —
// the sim-backed reports (validate, churn) run real sweeps, and trace
// can chew through multi-gigabyte journals.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/design"
	"repro/internal/dsa"
	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/job"
	"repro/internal/pra"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/stats"

	// Register the domains this tool can report on.
	_ "repro/internal/delivery"
	_ "repro/internal/gossip"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsa-report: ")
	var (
		domain  = flag.String("domain", pra.DomainName, "design space the input covers, one of: "+strings.Join(dsa.Names(), ", "))
		in      = flag.String("in", "results.csv", "CSV produced by dsa-sweep")
		ckpt    = flag.String("checkpoint", "", "dsa-sweep checkpoint dir to read instead of -in")
		coord   = flag.String("coordinator", "", "dsa-grid coordinator URL to fetch scores from instead of -in")
		cacheD  = flag.String("cache-dir", "", "score cache directory (cache report)")
		jobID   = flag.String("job", "", "coordinator job ID (default: the first job of -domain)")
		out     = flag.String("out", "results.csv", "output CSV path (merge)")
		merged  = flag.String("merged", "", "also write the canonically merged journal (JSONL) to this path (trace report)")
		preset  = flag.String("preset", "quick", "quick or paper (validate/churn)")
		stride  = flag.Int("stride", 30, "protocol stride for validate/churn")
		seed    = flag.Int64("seed", 1, "master seed for validate/churn")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of this report to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on completion")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		log.Fatal("usage: dsa-report [flags] fig2|fig3|fig4|fig5|fig6|fig7|fig8|table3|top|merge|validate|churn (swarming), top|scatter|merge (-domain others), cache, or trace DIR")
	}
	what := flag.Arg(0)
	stopProf, profErr := profiling.Start(*cpuProf, *memProf)
	if profErr != nil {
		log.Fatal(profErr)
	}
	defer stopProf()

	if what == "trace" {
		if flag.NArg() != 2 {
			log.Fatal("usage: dsa-report trace DIR|URL (a -trace-dir holding trace-*.jsonl journals, or a coordinator URL collecting shipped traces)")
		}
		runTrace(flag.Arg(1), *jobID, *merged)
		return
	}
	if flag.NArg() != 1 {
		log.Fatalf("report %q takes no argument", what)
	}

	if what == "cache" {
		runCacheReport(*cacheD, *coord)
		return
	}

	if *domain != pra.DomainName {
		d, err := dsa.Get(*domain)
		if err != nil {
			log.Fatal(err)
		}
		runGeneric(d, what, *in, *ckpt, *coord, *jobID, *out)
		return
	}

	switch what {
	case "validate", "churn":
		runSimBacked(what, *preset, *stride, *seed)
		return
	}

	var res *exp.SweepResult
	var err error
	if *coord != "" {
		var s *dsa.Scores
		if s, err = fetchGrid(*coord, *jobID, pra.Domain()); err == nil {
			var typed *pra.Scores
			if typed, err = pra.ScoresFromGeneric(s); err == nil {
				res = &exp.SweepResult{Protocols: typed.Protocols, Scores: typed}
			}
		}
	} else if *ckpt != "" {
		res, err = exp.LoadCheckpoint(*ckpt)
	} else if what == "merge" {
		err = fmt.Errorf("merge needs -checkpoint or -coordinator")
	} else {
		res, err = load(*in)
	}
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	switch what {
	case "merge":
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		src := *ckpt
		if *coord != "" {
			src = *coord
		}
		log.Printf("merged %s into %s (%d rows)", src, *out, len(res.Protocols))
	case "fig2":
		xs, ys := res.Fig2()
		fmt.Fprintf(w, "Figure 2: Robustness vs Performance, %d protocols\n", len(xs))
		if err := report.Scatter(w, xs, ys, 72, 24, "Robustness", "Performance"); err != nil {
			log.Fatal(err)
		}
	case "fig3", "fig4":
		const bins = 10
		h := res.Fig3(bins)
		label := "Performance"
		if what == "fig4" {
			h = res.Fig4(bins)
			label = "Robustness"
		}
		fmt.Fprintf(w, "Figure %s: %s histograms by partner count (columns k=0..9)\n", what[3:], label)
		err := report.Heat(w, h.RowNormalized, bins, design.MaxPartners+1, func(b int) string {
			return fmt.Sprintf("%.1f-%.1f", float64(b)/bins, float64(b+1)/bins)
		})
		if err != nil {
			log.Fatal(err)
		}
	case "fig5":
		curves := res.Fig5()
		fmt.Fprintln(w, "Figure 5: CCDF of Robustness by stranger policy")
		names := make([]string, 0, len(curves))
		for name := range curves {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "%s:\n", name)
			for _, pt := range thin(curves[name], 8) {
				fmt.Fprintf(w, "  P(R > %.3f) = %.3f\n", pt.X, pt.P)
			}
		}
	case "fig6", "fig7":
		pts := res.Fig6()
		title := "allocation policy"
		if what == "fig7" {
			pts = res.Fig7()
			title = "ranking function"
		}
		fmt.Fprintf(w, "Figure %s: Robustness by %s (mean / max)\n", what[3:], title)
		renderGroups(w, pts)
	case "fig8":
		_, _, pearson, err := res.Fig8()
		if err != nil {
			log.Fatal(err)
		}
		xs, ys, _, _ := res.Fig8()
		fmt.Fprintf(w, "Figure 8: Robustness vs Aggressiveness, Pearson r = %.3f (paper: 0.96)\n", pearson)
		if err := report.Scatter(w, xs, ys, 72, 24, "Robustness", "Aggressiveness"); err != nil {
			log.Fatal(err)
		}
	case "table3":
		perf, rob, agg, err := res.Table3()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "Table 3: OLS over %d protocols (adj R²: P=%.2f R=%.2f A=%.2f)\n",
			len(res.Protocols), perf.AdjR2, rob.AdjR2, agg.AdjR2)
		tbl := report.NewTable("variable", "P est", "P t", "P sig", "R est", "R t", "R sig", "A est", "A t", "A sig")
		for _, c := range perf.Coefficients {
			rc, ac := rob.Coef(c.Name), agg.Coef(c.Name)
			tbl.Add(c.Name,
				c.Estimate, c.TValue, sig(c.Significant(0.001)),
				rc.Estimate, rc.TValue, sig(rc.Significant(0.001)),
				ac.Estimate, ac.TValue, sig(ac.Significant(0.001)))
		}
		if err := tbl.Render(w); err != nil {
			log.Fatal(err)
		}
	case "top":
		renderTop(w, res)
	default:
		log.Fatalf("unknown report %q", what)
	}
}

func sig(ok bool) string {
	if ok {
		return "OK"
	}
	return "-"
}

// load parses a dsa-sweep CSV back into a SweepResult.
func load(path string) (*exp.SweepResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exp.ReadCSV(f)
}

func thin(pts []stats.CCDFPoint, n int) []stats.CCDFPoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]stats.CCDFPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*len(pts)/n])
	}
	return out
}

func renderGroups(w *os.File, pts []exp.GroupPoint) {
	sums := map[string]float64{}
	maxs := map[string]float64{}
	counts := map[string]int{}
	for _, p := range pts {
		sums[p.Group] += p.Robustness
		counts[p.Group]++
		if p.Robustness > maxs[p.Group] {
			maxs[p.Group] = p.Robustness
		}
	}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	tbl := report.NewTable("group", "n", "mean R", "max R")
	for _, n := range names {
		tbl.Add(n, counts[n], sums[n]/float64(counts[n]), maxs[n])
	}
	if err := tbl.Render(w); err != nil {
		log.Fatal(err)
	}
}

func renderTop(w *os.File, res *exp.SweepResult) {
	type row struct {
		p    design.Protocol
		perf float64
		rob  float64
	}
	rows := make([]row, len(res.Protocols))
	for i, p := range res.Protocols {
		rows[i] = row{p, res.Scores.Performance[i], res.Scores.Robustness[i]}
	}
	byPerf := append([]row(nil), rows...)
	sort.Slice(byPerf, func(a, b int) bool { return byPerf[a].perf > byPerf[b].perf })
	byRob := append([]row(nil), rows...)
	sort.Slice(byRob, func(a, b int) bool { return byRob[a].rob > byRob[b].rob })
	fmt.Fprintln(w, "Top 10 by Performance:")
	for _, r := range byPerf[:min(10, len(byPerf))] {
		fmt.Fprintf(w, "  P=%.4f R=%.4f  %s\n", r.perf, r.rob, r.p)
	}
	fmt.Fprintln(w, "Top 10 by Robustness:")
	for _, r := range byRob[:min(10, len(byRob))] {
		fmt.Fprintf(w, "  P=%.4f R=%.4f  %s\n", r.perf, r.rob, r.p)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runCacheReport renders the cache stats view: the live counters of a
// coordinator's cross-job cache, or the on-disk state of a local
// cache directory (opening claims no write segment until a first Put,
// which a stats view never issues, so it is safe against a cache in
// active use).
func runCacheReport(cacheDir, coord string) {
	w := os.Stdout
	switch {
	case coord != "":
		resp, err := grid.FetchCacheStats(context.Background(), nil, coord)
		if err != nil {
			log.Fatal(err)
		}
		if !resp.Enabled {
			fmt.Fprintf(w, "coordinator %s runs without a score cache (start dsa-grid serve with -cache-dir)\n", coord)
			return
		}
		fmt.Fprintf(w, "score cache at %s:\n", coord)
		printCacheStats(w, resp.CacheStats)
	case cacheDir != "":
		// Stat before Open: Open would create a missing directory, and
		// a stats view of a mistyped path must fail loudly rather than
		// report a healthy empty cache.
		if info, err := os.Stat(cacheDir); err != nil {
			log.Fatalf("cache dir: %v", err)
		} else if !info.IsDir() {
			log.Fatalf("cache dir %s is not a directory", cacheDir)
		}
		store, err := cache.Open(cache.Options{Dir: cacheDir})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		fmt.Fprintf(w, "score cache %s:\n", cacheDir)
		printCacheStats(w, store.Stats())
	default:
		log.Fatal("cache needs -cache-dir or -coordinator")
	}
}

func printCacheStats(w *os.File, st dsa.CacheStats) {
	tbl := report.NewTable("metric", "value")
	tbl.Add("entries", st.Entries)
	tbl.Add("bytes on disk", st.Bytes)
	tbl.Add("resident in memory", st.MemEntries)
	tbl.Add("hits", st.Hits)
	tbl.Add("misses", st.Misses)
	tbl.Add("puts", st.Puts)
	tbl.Add("lru evictions", st.Evictions)
	tbl.Add("records dropped", st.Dropped)
	tbl.Add("computations deduplicated", st.FlightWait)
	if err := tbl.Render(w); err != nil {
		log.Fatal(err)
	}
}

// fetchGrid pulls assembled scores from a dsa-grid coordinator's
// results API. With an empty jobID the first job of the report's
// domain is used.
func fetchGrid(baseURL, jobID string, d dsa.Domain) (*dsa.Scores, error) {
	ctx := context.Background()
	if jobID == "" {
		jobs, err := grid.ListJobs(ctx, nil, baseURL)
		if err != nil {
			return nil, err
		}
		// Prefer a complete job of the domain — a report wants scores
		// that exist — falling back to the first (still-running) one,
		// whose fetch will explain the 'incomplete' state.
		for _, j := range jobs {
			if j.Domain != d.Name() {
				continue
			}
			if jobID == "" {
				jobID = j.ID
			}
			if j.Complete {
				jobID = j.ID
				break
			}
		}
		if jobID == "" {
			return nil, fmt.Errorf("coordinator %s has no %q job (pass -job to pick one)", baseURL, d.Name())
		}
	}
	s, err := grid.FetchScores(ctx, nil, baseURL, jobID)
	if err != nil {
		return nil, err
	}
	if s.Domain != d.Name() {
		return nil, fmt.Errorf("coordinator job %s holds a %q sweep, not %q", jobID, s.Domain, d.Name())
	}
	return s, nil
}

// runGeneric renders the domain-agnostic reports: merge (checkpoint or
// coordinator → CSV), top (best points per measure) and scatter
// (second measure vs first). It never touches any file-swarming code
// path — every fact it needs comes through the dsa.Domain interface.
func runGeneric(d dsa.Domain, what, in, ckpt, coord, jobID, out string) {
	var s *dsa.Scores
	var err error
	switch {
	case coord != "":
		s, err = fetchGrid(coord, jobID, d)
	case ckpt != "":
		s, err = job.Load(ckpt)
		if err == nil && s.Domain != d.Name() {
			err = fmt.Errorf("checkpoint %s holds a %q sweep, not %q", ckpt, s.Domain, d.Name())
		}
	case what == "merge":
		err = fmt.Errorf("merge needs -checkpoint or -coordinator")
	default:
		var f *os.File
		if f, err = os.Open(in); err == nil {
			s, err = dsa.ReadCSV(f, d)
			f.Close()
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	switch what {
	case "merge":
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := dsa.WriteCSV(f, d, s); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		src := ckpt
		if coord != "" {
			src = coord
		}
		log.Printf("merged %s into %s (%d rows)", src, out, len(s.Points))
	case "top":
		for _, m := range d.Measures() {
			vals := s.Measure(m)
			order := make([]int, len(s.Points))
			for i := range order {
				order[i] = i
			}
			sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
			fmt.Printf("Top 10 by %s:\n", m)
			for _, i := range order[:min(10, len(order))] {
				fmt.Printf("  ")
				for _, mm := range d.Measures() {
					fmt.Printf("%s=%.4f ", mm, s.Measure(mm)[i])
				}
				fmt.Printf(" %s\n", d.Label(s.Points[i]))
			}
		}
	case "scatter":
		ms := d.Measures()
		if len(ms) < 2 {
			log.Fatalf("domain %q has a single measure; nothing to scatter", d.Name())
		}
		xs, ys := s.Measure(ms[1]), s.Measure(ms[0])
		fmt.Printf("%s vs %s, %d %s points\n", ms[1], ms[0], len(xs), d.Name())
		if err := report.Scatter(os.Stdout, xs, ys, 72, 24, ms[1], ms[0]); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("report %q is not available for domain %q (generic reports: top, scatter, merge)", what, d.Name())
	}
}

// runSimBacked handles the reports that need fresh simulation: the
// 90-10 robustness validation and the churn sensitivity check.
func runSimBacked(what, preset string, stride int, seed int64) {
	var cfg pra.Config
	switch preset {
	case "quick":
		cfg = pra.Quick()
	case "paper":
		cfg = pra.Paper()
	default:
		log.Fatalf("unknown preset %q", preset)
	}
	cfg.Seed = seed
	all := design.Enumerate()
	var protos []design.Protocol
	for i := 0; i < len(all); i += stride {
		protos = append(protos, all[i])
	}
	switch what {
	case "validate":
		res, err := exp.Sweep(protos, cfg)
		if err != nil {
			log.Fatal(err)
		}
		_, _, pearson, err := res.Validate9010(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("50-50 vs 90-10 robustness over %d protocols: Pearson r = %.3f (paper: 0.97)\n",
			len(protos), pearson)
	case "churn":
		pts, err := exp.ChurnSweep(protos, []float64{0, 0.01, 0.1}, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tbl := report.NewTable("churn", "k=0", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6", "k=7", "k=8", "k=9")
		for _, pt := range pts {
			cells := []interface{}{pt.Churn}
			for _, v := range pt.MeanPerfK {
				cells = append(cells, v)
			}
			tbl.Add(cells...)
		}
		fmt.Println("Mean normalised performance by partner count under churn (§4.4):")
		if err := tbl.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
