package main

// The trace report: merge every trace-*.jsonl journal in a directory
// (or the journals a coordinator collected from trace-shipping
// workers) onto one timeline and render where the sweep's time went —
// critical path, per-measure latency (with an inline histogram),
// stragglers, cache-hit attribution and per-worker utilization.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/report"
)

// runTrace loads every journal under src — a local directory or a
// coordinator URL — and renders the analysis. Both paths feed the
// same renderTrace over the same canonical merge order, so the report
// from a coordinator's collected journals is byte-identical to one
// run over the workers' own -trace-dir. With a non-empty mergedPath
// the canonically merged journal is also written there as JSONL.
func runTrace(src, jobID, mergedPath string) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		runTraceRemote(src, jobID, mergedPath)
		return
	}
	recs, err := obs.LoadDir(src)
	if err != nil {
		log.Fatal(err)
	}
	files, _ := obs.JournalFiles(src)
	if mergedPath != "" {
		writeMerged(mergedPath, func(w io.Writer) error {
			_, err := obs.Merge(w, files...)
			return err
		})
	}
	a := obs.Analyze(recs)
	if err := renderTrace(os.Stdout, a, len(files)); err != nil {
		log.Fatal(err)
	}
}

// runTraceRemote fetches the merged journal a coordinator collected
// (GET /v1/trace) plus its digest for the journal count, and renders
// the same report as the directory mode.
func runTraceRemote(baseURL, jobID, mergedPath string) {
	ctx := context.Background()
	digest, err := grid.FetchTraceDigest(ctx, nil, baseURL, jobID)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := grid.FetchTrace(ctx, nil, baseURL, jobID)
	if err != nil {
		log.Fatal(err)
	}
	if mergedPath != "" {
		writeMerged(mergedPath, func(w io.Writer) error {
			_, err := w.Write(raw)
			return err
		})
	}
	recs, err := obs.LoadReader(bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		log.Fatalf("coordinator %s has collected no trace spans (start workers with -ship-traces)", baseURL)
	}
	a := obs.Analyze(recs)
	if err := renderTrace(os.Stdout, a, digest.Journals); err != nil {
		log.Fatal(err)
	}
}

// writeMerged writes the merged journal to path via fill, failing
// loudly — a truncated merged file would silently skew any downstream
// comparison.
func writeMerged(path string, fill func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fill(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func renderTrace(w io.Writer, a *obs.Analysis, journals int) error {
	fmt.Fprintf(w, "Trace: %d records from %d journals\n\n", a.Records, journals)

	// Summary.
	tbl := report.NewTable("metric", "value")
	tbl.Add("tasks", a.Tasks)
	tbl.Add("wall clock (widest writer window)", round(a.Wall))
	tbl.Add("task busy time (all writers)", round(a.TaskBusy))
	tbl.Add("points simulated", a.PointsSimulated)
	tbl.Add("points cache-served", a.PointsCached)
	if total := a.PointsSimulated + a.PointsCached; total > 0 {
		tbl.Add("cache-hit rate", fmt.Sprintf("%.1f%%", 100*float64(a.PointsCached)/float64(total)))
	}
	if a.CacheLookups > 0 {
		tbl.Add("cache lookups (store events)", a.CacheLookups)
		tbl.Add("  of which hits", a.CacheHits)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}

	if len(a.CriticalPath) > 0 {
		fmt.Fprintf(w, "\nCritical path (writer %s):\n", a.CriticalPath[0].Writer)
		for i, r := range a.CriticalPath {
			label := r.Name
			if m := r.AttrStr("measure"); m != "" {
				label += " " + m
			}
			if t := r.AttrStr("task"); t != "" {
				label += " " + t
			}
			fmt.Fprintf(w, "  %s%s  %s\n", strings.Repeat("  ", i), label, round(r.Dur()))
		}
	}

	if len(a.Measures) > 0 {
		fmt.Fprintf(w, "\nPer-measure task latency:\n")
		mt := report.NewTable("measure", "tasks", "min", "p50", "p90", "max", "mean", "total", "points", "cached", "histogram")
		for _, m := range a.Measures {
			mt.Add(m.Measure, m.Tasks, round(m.Min), round(m.P50), round(m.P90),
				round(m.Max), round(m.Mean), round(m.Total), m.Points, m.CacheHits, sparkline(m.Hist[:]))
		}
		if err := mt.Render(w); err != nil {
			return err
		}
	}

	if len(a.Stragglers) > 0 {
		fmt.Fprintf(w, "\nStragglers (tasks far beyond their measure's typical duration):\n")
		st := report.NewTable("writer", "task", "measure", "dur", "typical", "factor")
		for _, s := range a.Stragglers {
			st.Add(s.Record.Writer, s.Record.AttrStr("task"), s.Measure,
				round(s.Dur), round(s.Typical), fmt.Sprintf("%.1fx", s.Factor))
		}
		if err := st.Render(w); err != nil {
			return err
		}
	}

	if len(a.Workers) > 0 {
		fmt.Fprintf(w, "\nPer-worker utilization:\n")
		wt := report.NewTable("worker", "tasks", "busy", "window", "parallelism", "simulated", "cached")
		for _, ws := range a.Workers {
			wt.Add(ws.Writer, ws.Tasks, round(ws.Busy), round(ws.Window),
				fmt.Sprintf("%.2f", ws.Parallelism), ws.Simulated, ws.CacheHits)
		}
		if err := wt.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// round trims durations to a readable precision: tasks run from
// microseconds (cache-served) to minutes, so scale the rounding to the
// magnitude instead of fixing a unit.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d
	}
}

// sparkline renders a histogram as one bar character per bucket.
func sparkline(buckets []int) string {
	bars := []rune("▁▂▃▄▅▆▇█")
	peak := 0
	for _, b := range buckets {
		peak = max(peak, b)
	}
	if peak == 0 {
		return ""
	}
	var sb strings.Builder
	for _, b := range buckets {
		if b == 0 {
			sb.WriteRune('·')
			continue
		}
		sb.WriteRune(bars[(b*(len(bars)-1))/peak])
	}
	return sb.String()
}
