package main

import (
	"strings"
	"testing"

	"repro/internal/dsa"
)

// TestUnknownDomainErrorListsRegistered pins the report CLI's failure
// mode for a bad -domain value: dsa.Get's error must name the bad
// value and every domain this binary's blank imports register, so a
// typo surfaces the valid options instead of an opaque failure.
func TestUnknownDomainErrorListsRegistered(t *testing.T) {
	_, err := dsa.Get("no-such-domain")
	if err == nil {
		t.Fatal("unknown domain accepted")
	}
	for _, want := range []string{`"no-such-domain"`, "delivery", "gossip", "swarming"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
}
