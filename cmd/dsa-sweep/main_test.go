package main

import (
	"strings"
	"testing"

	"repro/internal/dsa"
)

// TestUnknownDomainErrorListsRegistered pins this binary's failure
// mode for a bad -domain value: main resolves the flag through
// dsa.Get, whose error must name the offending value and every domain
// this binary registers — the difference between "opaque failure" and
// "typo, here are your options". The blank domain imports above are
// what puts delivery/gossip/swarming in that list; if one is dropped,
// this test fails.
func TestUnknownDomainErrorListsRegistered(t *testing.T) {
	_, err := dsa.Get("definitely-not-a-domain")
	if err == nil {
		t.Fatal("unknown domain accepted")
	}
	for _, want := range []string{`"definitely-not-a-domain"`, "delivery", "gossip", "swarming"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
}

// TestDomainFlagHelpListsRegistered: the -domain usage string is built
// from the registry, so help text can never drift from the set of
// sweepable domains.
func TestDomainFlagHelpListsRegistered(t *testing.T) {
	names := dsa.Names()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 registered domains, got %v", names)
	}
	joined := strings.Join(names, ", ")
	for _, want := range []string{"delivery", "gossip", "swarming"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("registered names %v missing %s", names, want)
		}
	}
}
