// Command dsa-sweep runs the PRA quantification over the file-swarming
// design space and writes a CSV consumed by dsa-report.
//
// Usage:
//
//	dsa-sweep [-preset quick|paper] [-stride N] [-opponents N]
//	          [-peers N] [-rounds N] [-perfruns N] [-encruns N]
//	          [-seed N] [-out results.csv] [-explore]
//
// The quick preset reproduces the shape of Figures 2-8 and Table 3 in
// minutes on a laptop; the paper preset is the full 107-million-run
// experiment of Section 4.3 (the authors used 25 hours on a 50-node
// cluster — plan accordingly). -stride N evaluates every Nth protocol,
// shrinking the protocol set itself. -explore additionally runs the
// Section 7 heuristic explorers (hill climbing and evolutionary search)
// against homogeneous performance and prints what they find.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/exp"
	"repro/internal/pra"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsa-sweep: ")
	var (
		preset    = flag.String("preset", "quick", "quick or paper")
		stride    = flag.Int("stride", 1, "evaluate every Nth protocol of the 3270")
		opponents = flag.Int("opponents", -1, "opponent panel size (0 = full round-robin)")
		peers     = flag.Int("peers", 0, "population size override")
		rounds    = flag.Int("rounds", 0, "rounds per run override")
		perfRuns  = flag.Int("perfruns", 0, "performance runs override")
		encRuns   = flag.Int("encruns", 0, "encounter runs override")
		seed      = flag.Int64("seed", 1, "master seed")
		out       = flag.String("out", "results.csv", "output CSV path")
		explore   = flag.Bool("explore", false, "also run the heuristic explorers")
	)
	flag.Parse()

	var cfg pra.Config
	switch *preset {
	case "quick":
		cfg = pra.Quick()
	case "paper":
		cfg = pra.Paper()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	cfg.Seed = *seed
	if *opponents >= 0 {
		cfg.Opponents = *opponents
	}
	if *peers > 0 {
		cfg.Peers = *peers
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *perfRuns > 0 {
		cfg.PerfRuns = *perfRuns
	}
	if *encRuns > 0 {
		cfg.EncounterRuns = *encRuns
	}
	if *stride < 1 {
		log.Fatal("stride must be >= 1")
	}

	all := design.Enumerate()
	var protos []design.Protocol
	for i := 0; i < len(all); i += *stride {
		protos = append(protos, all[i])
	}
	log.Printf("sweeping %d protocols (%s preset, %d peers, %d rounds, %d opponents)",
		len(protos), *preset, cfg.Peers, cfg.Rounds, cfg.Opponents)

	start := time.Now()
	res, err := exp.Sweep(protos, cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sweep done in %v", time.Since(start).Round(time.Second))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rows)", *out, len(res.Protocols))

	if *explore {
		runExplorers(cfg)
	}
}

// runExplorers demonstrates the Section 7 heuristic exploration against
// homogeneous performance, with a shared memoised objective.
func runExplorers(cfg pra.Config) {
	space := core.FileSwarmingSpace()
	perfCfg := cfg
	perfCfg.PerfRuns = 1
	obj := func(pt core.Point) (float64, error) {
		proto, err := core.PointProtocol(pt)
		if err != nil {
			return 0, err
		}
		raw, err := pra.PerformanceSweep([]design.Protocol{proto}, perfCfg)
		if err != nil {
			return 0, err
		}
		return raw[0], nil
	}
	hc, hcCalls, err := core.HillClimb(space, obj, core.HillClimbConfig{Restarts: 3, MaxSteps: 30, Seed: cfg.Seed})
	if err != nil {
		log.Fatal(err)
	}
	hcProto, _ := core.PointProtocol(hc.Point)
	fmt.Printf("hill climb: %s  raw=%.1f KiB/s  (%d objective calls vs %d exhaustive)\n",
		hcProto, hc.Score, hcCalls, design.SpaceSize)
	ev, evCalls, err := core.Evolve(space, obj, core.EvolveConfig{Population: 24, Generations: 12, Seed: cfg.Seed})
	if err != nil {
		log.Fatal(err)
	}
	evProto, _ := core.PointProtocol(ev.Point)
	fmt.Printf("evolution:  %s  raw=%.1f KiB/s  (%d objective calls)\n", evProto, ev.Score, evCalls)
}
