// Command dsa-sweep runs a Design Space Analysis sweep over any
// registered domain and writes a CSV consumed by dsa-report.
//
// Usage:
//
//	dsa-sweep [-domain swarming|gossip|delivery] [-preset quick|paper]
//	          [-stride N] [-opponents N]
//	          [-peers N] [-rounds N] [-perfruns N] [-encruns N]
//	          [-seed N] [-out results.csv] [-explore]
//	          [-checkpoint-dir DIR] [-resume] [-cache-dir DIR]
//	          [-shards N] [-shard-index I] [-chunk N] [-trace-dir DIR]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// -domain selects the design space: swarming is the 3270-protocol
// file-swarming space of Section 4 (the default), gossip the
// 216-protocol dissemination space of Section 3.1, delivery the
// 576-strategy download-orchestration space (Section 7's
// generalisation claim made concrete). An unknown name errors with the
// registered list. Every domain runs through the same sharded,
// checkpointed job engine — the flags below behave identically for all
// of them.
//
// The quick preset reproduces the shape of the paper's results in
// minutes on a laptop; the paper preset is the full-scale experiment
// (for swarming, the 107-million-run Section 4.3 sweep — the authors
// used 25 hours on a 50-node cluster, plan accordingly). -stride N
// evaluates every Nth point, shrinking the point set itself. -explore
// additionally runs the Section 7 heuristic explorers (hill climbing
// and evolutionary search) against the domain's primary measure and
// prints what they find.
//
// Paper-scale runs go through the job engine (internal/job):
// -checkpoint-dir journals every completed task so an interrupted run
// (Ctrl-C, crash, kill) restarted with -resume skips finished work and
// produces byte-identical scores. -shards N -shard-index I runs shard I
// of an N-way split — launch N processes (or machines) with the same
// flags and distinct indices, give each its own checkpoint dir (or
// share one on a common filesystem), then merge with
//
//	dsa-report -domain D -checkpoint DIR -out results.csv merge
//
// after copying the shard dirs' manifest-*.jsonl and task-*.json files
// together. The shard that finishes last assembles and writes the CSV
// itself when the dirs are shared.
//
// -cache-dir DIR memoises raw scores in a content-addressed store
// (internal/cache): a re-run of the same or an overlapping spec —
// different stride, different chunking, an -explore pass, another
// process sharing the directory — reuses every score it already has
// and produces byte-identical output. The cache key covers everything
// a score depends on, so changing the seed, config or domain makes
// entries miss rather than mis-hit. Inspect a cache with
// `dsa-report -cache-dir DIR cache`.
//
// -trace-dir DIR appends a span journal (trace-s<I>of<N>.jsonl, one
// line per completed span: the sweep root, every task with its
// cache-hit/simulated split, cache lookups and simulate slices) into
// DIR. Journals from different shards of the same sweep merge cleanly:
// point `dsa-report trace DIR` at the directory for critical path,
// per-measure latency, stragglers and cache attribution. Tracing costs
// no steady-state allocations and well under 5% of sweep time.
//
// -cpuprofile / -memprofile write pprof profiles of the sweep (the CPU
// profile covers the whole run; the heap profile is taken after a
// final GC on clean exit), so perf work on the simulators measures
// the real workload instead of guessing — see the README's
// "Benchmarking and profiling" guide. Profiles are written on normal
// completion, including the shard-incomplete path; a run that dies on
// a flag or I/O error leaves no usable profile.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dsa"
	"repro/internal/exp"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/pra"
	"repro/internal/profiling"

	// Register the domains this tool can sweep.
	_ "repro/internal/delivery"
	_ "repro/internal/gossip"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsa-sweep: ")
	var (
		domain    = flag.String("domain", pra.DomainName, "design space to sweep, one of: "+strings.Join(dsa.Names(), ", "))
		preset    = flag.String("preset", "quick", "quick or paper")
		stride    = flag.Int("stride", 1, "evaluate every Nth point of the space")
		opponents = flag.Int("opponents", -1, "opponent panel size (0 = full round-robin)")
		peers     = flag.Int("peers", 0, "population size override")
		rounds    = flag.Int("rounds", 0, "rounds per run override")
		perfRuns  = flag.Int("perfruns", 0, "performance runs override")
		encRuns   = flag.Int("encruns", 0, "encounter runs override")
		seed      = flag.Int64("seed", 1, "master seed")
		out       = flag.String("out", "results.csv", "output CSV path")
		explore   = flag.Bool("explore", false, "also run the heuristic explorers")
		ckptDir   = flag.String("checkpoint-dir", "", "journal completed work here; survives interruption")
		resume    = flag.Bool("resume", false, "continue from an existing checkpoint dir, skipping finished tasks")
		cacheDir  = flag.String("cache-dir", "", "content-addressed score cache; reruns and overlapping sweeps reuse scores")
		shards    = flag.Int("shards", 1, "total shard processes splitting this sweep")
		shardIdx  = flag.Int("shard-index", 0, "this process's shard in [0,shards)")
		chunk     = flag.Int("chunk", 0, "points per job task (0 = default)")
		traceDir  = flag.String("trace-dir", "", "append a span journal (trace-s<I>of<N>.jsonl) into DIR; analyze with dsa-report trace")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on completion")
	)
	flag.Parse()

	// Validate every flag up front, before any sweep state exists: a
	// bad invocation must exit non-zero with a one-line error, never
	// panic later or silently sweep the wrong shard.
	if *stride < 1 {
		log.Fatal("stride must be >= 1")
	}
	if *chunk < 0 {
		log.Fatalf("chunk must be >= 0 (0 = default), got %d", *chunk)
	}
	if *shards < 1 {
		log.Fatalf("shards must be >= 1, got %d", *shards)
	}
	if *shardIdx < 0 || *shardIdx >= *shards {
		log.Fatalf("shard-index must be in [0,%d) for -shards %d, got %d", *shards, *shards, *shardIdx)
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume needs -checkpoint-dir")
	}
	d, err := dsa.Get(*domain)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := d.DefaultConfig(*preset)
	if err != nil {
		log.Fatal(err)
	}
	cfg = dsa.ApplyOverrides(cfg, *seed, *opponents, *peers, *rounds, *perfRuns, *encRuns)
	if *shards > 1 && *ckptDir == "" {
		// Without a journal a shard's results evaporate on exit and
		// there is nothing to merge.
		log.Fatal("-shards needs -checkpoint-dir, or the shard results cannot be merged")
	}
	if *ckptDir != "" && !*resume && *shards == 1 {
		// Refuse to silently mix a new run into old state; the job
		// engine would reject an incompatible spec anyway, but a
		// compatible leftover dir deserves an explicit choice. With
		// -shards > 1 sharing a dir is the documented workflow, so
		// concurrently-started shards are exempt.
		if entries, err := os.ReadDir(*ckptDir); err == nil && len(entries) > 0 {
			log.Fatalf("checkpoint dir %s is not empty; pass -resume to continue it or pick a fresh dir", *ckptDir)
		}
	}

	points := dsa.StridePoints(d, *stride)
	log.Printf("sweeping %d %s points (%s preset, %d peers, %d rounds, %d opponents, shard %d/%d)",
		len(points), d.Name(), *preset, cfg.Peers, cfg.Rounds, cfg.Opponents, *shardIdx, *shards)

	// Profiles cover everything from here on; stopProf is idempotent
	// and is called explicitly on the interrupted path too, so a
	// Ctrl-C'd sweep still leaves a usable CPU profile.
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	// The recorder is always live — memory-only without -trace-dir — so
	// the progress line's cache-hit rate and points/sec cost nothing
	// extra when journalling is off.
	writer := fmt.Sprintf("s%dof%d", *shardIdx, *shards)
	var rec *obs.Recorder
	if *traceDir != "" {
		if rec, err = obs.OpenDir(*traceDir, writer); err != nil {
			log.Fatal(err)
		}
		log.Printf("tracing to %s", obs.JournalPath(*traceDir, writer))
	} else {
		rec = obs.NewRecorder(writer)
	}
	defer rec.Close()

	var scoreCache *cache.Store
	if *cacheDir != "" {
		var err error
		if scoreCache, err = cache.Open(cache.Options{Dir: *cacheDir}); err != nil {
			log.Fatal(err)
		}
		defer scoreCache.Close()
		scoreCache.SetTracer(rec)
		st := scoreCache.Stats()
		log.Printf("score cache %s: %d entries, %d bytes on disk", *cacheDir, st.Entries, st.Bytes)
	}

	// First Ctrl-C / SIGTERM cancels the sweep cleanly: in-flight
	// tasks drain (and are journalled), no new ones start. Once the
	// cancellation fires the handler unregisters itself, so a second
	// signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	jobOpts := job.Options{
		Dir:        *ckptDir,
		Shards:     *shards,
		ShardIndex: *shardIdx,
		Chunk:      *chunk,
		Trace:      rec,
		Progress:   progressLogger(rec),
	}
	if scoreCache != nil {
		// Assign only when non-nil: a typed-nil *cache.Store in the
		// interface field would read as "cache present".
		jobOpts.Cache = scoreCache
	}
	start := time.Now()
	scores, err := job.Run(ctx, d, points, cfg, jobOpts)
	switch {
	case errors.Is(err, job.ErrIncomplete):
		log.Printf("shard %d/%d done in %v; %v", *shardIdx, *shards, time.Since(start).Round(time.Second), err)
		log.Printf("merge once all shards finish: dsa-report -domain %s -checkpoint %s -out %s merge", d.Name(), *ckptDir, *out)
		return
	case errors.Is(err, context.Canceled):
		// log.Fatal skips defers: flush the journal and profile so an
		// interrupted sweep still leaves usable artifacts.
		rec.Close()
		stopProf()
		if *ckptDir != "" {
			log.Fatalf("interrupted after %v; rerun with -resume -checkpoint-dir %s to continue", time.Since(start).Round(time.Second), *ckptDir)
		}
		log.Fatal("interrupted (no -checkpoint-dir, progress lost)")
	case err != nil:
		rec.Close()
		stopProf() // a sweep dying mid-run still leaves a usable profile
		log.Fatal(err)
	}
	log.Printf("sweep done in %v", time.Since(start).Round(time.Second))
	if st := rec.Stats(); st.PointsSimulated+st.PointsCached > 0 {
		log.Printf("trace: %d tasks, %d points simulated, %d cache-served (%.0f%% hit rate)",
			st.TasksDone, st.PointsSimulated, st.PointsCached,
			100*float64(st.PointsCached)/float64(st.PointsSimulated+st.PointsCached))
	}
	// The profiles' subject — the sweep — is over; finish them now so
	// even a failed CSV write cannot discard an hours-long profile.
	stopProf()

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(f, d, scores); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rows)", *out, len(scores.Points))

	if *explore {
		runExplorers(d, cfg, scoreCache, rec)
	}
	if scoreCache != nil {
		st := scoreCache.Stats()
		log.Printf("score cache: %d hits, %d misses, %d entries (%d bytes on disk)",
			st.Hits, st.Misses, st.Entries, st.Bytes)
	}
	// Close explicitly so a journal that cannot be flushed fails the
	// run loudly instead of dying silently in a defer.
	if err := rec.Close(); err != nil {
		log.Fatalf("trace journal: %v", err)
	}
}

// writeCSV picks the output format through the shared layout policy:
// the swarming domain keeps its original dsa-sweep CSV layout (the
// figure and table extractors of dsa-report parse it), every other
// domain uses the generic layout.
func writeCSV(f *os.File, d dsa.Domain, scores *dsa.Scores) error {
	return exp.WriteDomainCSV(f, d, scores)
}

// progressLogger returns a job progress callback that logs at most one
// line every few seconds: task counts, elapsed time, an ETA for this
// process's remaining share, and the live cache-hit rate and simulated
// throughput read off the recorder's counters.
func progressLogger(rec *obs.Recorder) func(job.Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p job.Progress) {
		mu.Lock()
		defer mu.Unlock()
		done := p.FreshTasks >= p.MineTasks
		if !done && time.Since(last) < 5*time.Second {
			return
		}
		last = time.Now()
		eta := "n/a"
		if p.ETA > 0 {
			eta = p.ETA.Round(time.Second).String()
		}
		st := rec.Stats()
		hitRate := 0.0
		if total := st.PointsSimulated + st.PointsCached; total > 0 {
			hitRate = 100 * float64(st.PointsCached) / float64(total)
		}
		rate := 0.0
		if p.Elapsed > 0 {
			rate = float64(st.PointsSimulated) / p.Elapsed.Seconds()
		}
		log.Printf("progress: %d/%d tasks (%d this run), elapsed %v, ETA %s, cache-hit %.0f%%, %.0f pts/s",
			p.DoneTasks, p.TotalTasks, p.FreshTasks, p.Elapsed.Round(time.Second), eta, hitRate, rate)
	}
}

// runExplorers demonstrates the Section 7 heuristic exploration on the
// selected domain against its primary measure, with a shared memoised
// objective. With -cache-dir the two searches also share raw scores
// with each other, with previous runs and with the sweep itself (the
// sweep fills the cache at full PerfRuns scale; the explorers use
// PerfRuns 1, a different config hash, so their entries are disjoint —
// a warm second -explore run is where the cache pays off).
func runExplorers(d dsa.Domain, cfg dsa.Config, store *cache.Store, rec *obs.Recorder) {
	var sc dsa.ScoreCache
	if store != nil {
		sc = store
	}
	perfCfg := cfg
	perfCfg.PerfRuns = 1
	primary := d.Measures()[0]
	weights := dsa.Weights{primary: 1}
	hc, hcCalls, err := dsa.HillClimbTraced(d, weights, perfCfg, core.HillClimbConfig{Restarts: 3, MaxSteps: 30, Seed: cfg.Seed}, sc, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hill climb: %s  raw %s=%.1f  (%d objective calls vs %d exhaustive)\n",
		d.Label(hc.Point), primary, hc.Score, hcCalls, d.Space().Size())
	ev, evCalls, err := dsa.EvolveTraced(d, weights, perfCfg, core.EvolveConfig{Population: 24, Generations: 12, Seed: cfg.Seed}, sc, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evolution:  %s  raw %s=%.1f  (%d objective calls)\n",
		d.Label(ev.Point), primary, ev.Score, evCalls)
}
