// Command dsa-sweep runs the PRA quantification over the file-swarming
// design space and writes a CSV consumed by dsa-report.
//
// Usage:
//
//	dsa-sweep [-preset quick|paper] [-stride N] [-opponents N]
//	          [-peers N] [-rounds N] [-perfruns N] [-encruns N]
//	          [-seed N] [-out results.csv] [-explore]
//	          [-checkpoint-dir DIR] [-resume]
//	          [-shards N] [-shard-index I] [-chunk N]
//
// The quick preset reproduces the shape of Figures 2-8 and Table 3 in
// minutes on a laptop; the paper preset is the full 107-million-run
// experiment of Section 4.3 (the authors used 25 hours on a 50-node
// cluster — plan accordingly). -stride N evaluates every Nth protocol,
// shrinking the protocol set itself. -explore additionally runs the
// Section 7 heuristic explorers (hill climbing and evolutionary search)
// against homogeneous performance and prints what they find.
//
// Paper-scale runs go through the job engine (internal/job):
// -checkpoint-dir journals every completed task so an interrupted run
// (Ctrl-C, crash, kill) restarted with -resume skips finished work and
// produces byte-identical scores. -shards N -shard-index I runs shard I
// of an N-way split — launch N processes (or machines) with the same
// flags and distinct indices, give each its own checkpoint dir (or
// share one on a common filesystem), then merge with
//
//	dsa-report -checkpoint DIR -out results.csv merge
//
// after copying the shard dirs' manifest-*.jsonl and task-*.json files
// together. The shard that finishes last assembles and writes the CSV
// itself when the dirs are shared.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/exp"
	"repro/internal/job"
	"repro/internal/pra"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsa-sweep: ")
	var (
		preset    = flag.String("preset", "quick", "quick or paper")
		stride    = flag.Int("stride", 1, "evaluate every Nth protocol of the 3270")
		opponents = flag.Int("opponents", -1, "opponent panel size (0 = full round-robin)")
		peers     = flag.Int("peers", 0, "population size override")
		rounds    = flag.Int("rounds", 0, "rounds per run override")
		perfRuns  = flag.Int("perfruns", 0, "performance runs override")
		encRuns   = flag.Int("encruns", 0, "encounter runs override")
		seed      = flag.Int64("seed", 1, "master seed")
		out       = flag.String("out", "results.csv", "output CSV path")
		explore   = flag.Bool("explore", false, "also run the heuristic explorers")
		ckptDir   = flag.String("checkpoint-dir", "", "journal completed work here; survives interruption")
		resume    = flag.Bool("resume", false, "continue from an existing checkpoint dir, skipping finished tasks")
		shards    = flag.Int("shards", 1, "total shard processes splitting this sweep")
		shardIdx  = flag.Int("shard-index", 0, "this process's shard in [0,shards)")
		chunk     = flag.Int("chunk", 0, "protocols per job task (0 = default)")
	)
	flag.Parse()

	var cfg pra.Config
	switch *preset {
	case "quick":
		cfg = pra.Quick()
	case "paper":
		cfg = pra.Paper()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	cfg.Seed = *seed
	if *opponents >= 0 {
		cfg.Opponents = *opponents
	}
	if *peers > 0 {
		cfg.Peers = *peers
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *perfRuns > 0 {
		cfg.PerfRuns = *perfRuns
	}
	if *encRuns > 0 {
		cfg.EncounterRuns = *encRuns
	}
	if *stride < 1 {
		log.Fatal("stride must be >= 1")
	}
	if *shards < 1 || *shardIdx < 0 || *shardIdx >= *shards {
		log.Fatalf("need 1 <= shards and 0 <= shard-index < shards, got %d/%d", *shardIdx, *shards)
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume needs -checkpoint-dir")
	}
	if *shards > 1 && *ckptDir == "" {
		// Without a journal a shard's results evaporate on exit and
		// there is nothing to merge.
		log.Fatal("-shards needs -checkpoint-dir, or the shard results cannot be merged")
	}
	if *ckptDir != "" && !*resume && *shards == 1 {
		// Refuse to silently mix a new run into old state; the job
		// engine would reject an incompatible spec anyway, but a
		// compatible leftover dir deserves an explicit choice. With
		// -shards > 1 sharing a dir is the documented workflow, so
		// concurrently-started shards are exempt.
		if entries, err := os.ReadDir(*ckptDir); err == nil && len(entries) > 0 {
			log.Fatalf("checkpoint dir %s is not empty; pass -resume to continue it or pick a fresh dir", *ckptDir)
		}
	}

	all := design.Enumerate()
	var protos []design.Protocol
	for i := 0; i < len(all); i += *stride {
		protos = append(protos, all[i])
	}
	log.Printf("sweeping %d protocols (%s preset, %d peers, %d rounds, %d opponents, shard %d/%d)",
		len(protos), *preset, cfg.Peers, cfg.Rounds, cfg.Opponents, *shardIdx, *shards)

	// First Ctrl-C / SIGTERM cancels the sweep cleanly: in-flight
	// tasks drain (and are journalled), no new ones start. Once the
	// cancellation fires the handler unregisters itself, so a second
	// signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	start := time.Now()
	res, err := exp.SweepJob(ctx, protos, cfg, job.Options{
		Dir:        *ckptDir,
		Shards:     *shards,
		ShardIndex: *shardIdx,
		Chunk:      *chunk,
		Progress:   progressLogger(),
	})
	switch {
	case errors.Is(err, job.ErrIncomplete):
		log.Printf("shard %d/%d done in %v; %v", *shardIdx, *shards, time.Since(start).Round(time.Second), err)
		log.Printf("merge once all shards finish: dsa-report -checkpoint %s -out %s merge", *ckptDir, *out)
		return
	case errors.Is(err, context.Canceled):
		if *ckptDir != "" {
			log.Fatalf("interrupted after %v; rerun with -resume -checkpoint-dir %s to continue", time.Since(start).Round(time.Second), *ckptDir)
		}
		log.Fatal("interrupted (no -checkpoint-dir, progress lost)")
	case err != nil:
		log.Fatal(err)
	}
	log.Printf("sweep done in %v", time.Since(start).Round(time.Second))

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteCSV(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d rows)", *out, len(res.Protocols))

	if *explore {
		runExplorers(cfg)
	}
}

// progressLogger returns a job progress callback that logs at most one
// line every few seconds: task counts, elapsed time, and an ETA for
// this process's remaining share.
func progressLogger() func(job.Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p job.Progress) {
		mu.Lock()
		defer mu.Unlock()
		done := p.FreshTasks >= p.MineTasks
		if !done && time.Since(last) < 5*time.Second {
			return
		}
		last = time.Now()
		eta := "n/a"
		if p.ETA > 0 {
			eta = p.ETA.Round(time.Second).String()
		}
		log.Printf("progress: %d/%d tasks (%d this run), elapsed %v, ETA %s",
			p.DoneTasks, p.TotalTasks, p.FreshTasks, p.Elapsed.Round(time.Second), eta)
	}
}

// runExplorers demonstrates the Section 7 heuristic exploration against
// homogeneous performance, with a shared memoised objective.
func runExplorers(cfg pra.Config) {
	space := core.FileSwarmingSpace()
	perfCfg := cfg
	perfCfg.PerfRuns = 1
	obj := func(pt core.Point) (float64, error) {
		proto, err := core.PointProtocol(pt)
		if err != nil {
			return 0, err
		}
		raw, err := pra.PerformanceSweep([]design.Protocol{proto}, perfCfg)
		if err != nil {
			return 0, err
		}
		return raw[0], nil
	}
	hc, hcCalls, err := core.HillClimb(space, obj, core.HillClimbConfig{Restarts: 3, MaxSteps: 30, Seed: cfg.Seed})
	if err != nil {
		log.Fatal(err)
	}
	hcProto, _ := core.PointProtocol(hc.Point)
	fmt.Printf("hill climb: %s  raw=%.1f KiB/s  (%d objective calls vs %d exhaustive)\n",
		hcProto, hc.Score, hcCalls, design.SpaceSize)
	ev, evCalls, err := core.Evolve(space, obj, core.EvolveConfig{Population: 24, Generations: 12, Seed: cfg.Seed})
	if err != nil {
		log.Fatal(err)
	}
	evProto, _ := core.PointProtocol(ev.Point)
	fmt.Printf("evolution:  %s  raw=%.1f KiB/s  (%d objective calls)\n", evProto, ev.Score, evCalls)
}
