// Command swarm-bench regenerates the Section 5 validation figures on
// the piece-level swarm simulator: the three competitive-encounter
// panels of Figure 9 and the homogeneous-swarm comparison of Figure 10.
//
// Usage:
//
//	swarm-bench [-leechers 50] [-runs 10] [-seed 1] fig9a|fig9b|fig9c|fig10|all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/exp"
	"repro/internal/report"
	"repro/internal/swarm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swarm-bench: ")
	var (
		leechers = flag.Int("leechers", 50, "leechers per swarm")
		runs     = flag.Int("runs", 10, "runs per data point")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: swarm-bench [flags] fig9a|fig9b|fig9c|fig10|all")
	}
	cfg := swarm.Default()
	cfg.Seed = *seed

	what := flag.Arg(0)
	run := func(name string) {
		switch name {
		case "fig9a":
			series("Figure 9(a): Loyal-When-needed vs BitTorrent", exp.Fig9a, *leechers, *runs, cfg)
		case "fig9b":
			series("Figure 9(b): Birds vs BitTorrent", exp.Fig9b, *leechers, *runs, cfg)
		case "fig9c":
			series("Figure 9(c): Loyal-When-needed vs Birds", exp.Fig9c, *leechers, *runs, cfg)
		case "fig10":
			fig10(*leechers, *runs, cfg)
		default:
			log.Fatalf("unknown experiment %q", name)
		}
	}
	if what == "all" {
		for _, name := range []string{"fig9a", "fig9b", "fig9c", "fig10"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(what)
}

func series(title string, f func(int, int, swarm.Config) ([]swarm.MixPoint, error), n, runs int, cfg swarm.Config) {
	pts, err := f(n, runs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(title)
	tbl := report.NewTable("fraction A", "A mean (s)", "A ±95%", "B mean (s)", "B ±95%")
	for _, p := range pts {
		aMean, aHalf := fmtCI(p.TimeA.Mean, p.TimeA.Half, p.CountA > 0)
		bMean, bHalf := fmtCI(p.TimeB.Mean, p.TimeB.Half, p.CountA < n)
		tbl.Add(p.FracA, aMean, aHalf, bMean, bHalf)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func fmtCI(mean, half float64, present bool) (string, string) {
	if !present {
		return "-", "-"
	}
	return fmt.Sprintf("%.1f", mean), fmt.Sprintf("%.1f", half)
}

func fig10(n, runs int, cfg swarm.Config) {
	out, err := exp.Fig10(n, runs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 10: average download times, homogeneous swarms")
	labels := make([]string, 0, len(exp.Fig10Clients))
	values := make([]float64, 0, len(exp.Fig10Clients))
	for _, c := range exp.Fig10Clients {
		ci := out[c]
		labels = append(labels, fmt.Sprintf("%s (±%.1f)", c, ci.Half))
		values = append(values, ci.Mean)
	}
	if err := report.HBar(os.Stdout, labels, values, 40); err != nil {
		log.Fatal(err)
	}
}
