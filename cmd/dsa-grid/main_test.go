package main

import (
	"strings"
	"testing"

	"repro/internal/dsa"
)

// TestRegisteredDomainsReachGrid: the worker resolves a wire spec's
// domain by name through the registry, so every domain this binary is
// expected to serve must be registered by its blank imports — and an
// unknown -domain on serve must error naming the registered list.
func TestRegisteredDomainsReachGrid(t *testing.T) {
	for _, name := range []string{"delivery", "gossip", "swarming"} {
		if _, err := dsa.Get(name); err != nil {
			t.Fatalf("domain %s not registered in dsa-grid: %v", name, err)
		}
	}
	_, err := dsa.Get("bogus")
	if err == nil {
		t.Fatal("unknown domain accepted")
	}
	for _, want := range []string{`"bogus"`, "delivery", "gossip", "swarming"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
}
