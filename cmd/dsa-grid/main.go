// Command dsa-grid runs a Design Space Analysis sweep as a distributed
// grid: one coordinator process owns the task list and checkpoint, any
// number of worker processes (on any machines that can reach it) lease
// tasks over HTTP, compute them, and upload results. Workers can join,
// leave, or be killed at any time — a dead worker's leases expire and
// its tasks are re-run — and the assembled scores are byte-identical
// to a single-process dsa-sweep run of the same spec.
//
// Usage:
//
//	dsa-grid serve -addr :8437 [-domain swarming|gossip|delivery] [-preset quick|paper]
//	               [-stride N] [-opponents N] [-peers N] [-rounds N]
//	               [-perfruns N] [-encruns N] [-seed N] [-chunk N]
//	               [-checkpoint-dir DIR] [-cache-dir DIR] [-lease-ttl 30s]
//	               [-out results.csv] [-once] [-priority N]
//	               [-auth-token SECRET] [-rate-limit N] [-rate-burst N]
//	               [-audit-rate F] [-hedge] [-pprof]
//
//	dsa-grid work  -coordinator http://host:8437 [-job ID] [-name ID]
//	               [-workers N] [-tasks-per-lease N] [-cache-dir DIR]
//	               [-auth-token SECRET] [-trace-dir DIR] [-metrics-addr :9090]
//	               [-ship-traces] [-ship-interval 2s] [-reconnect 30s]
//	               [-chaos-transport SPEC] [-chaos-byzantine] [-pprof]
//	               [-cpuprofile FILE] [-memprofile FILE]
//
// serve registers the sweep (the sweep-shaping flags mirror dsa-sweep)
// and serves the /v1 API: job listing, task leases, result ingest, and
// live progress (GET /v1/jobs/{id}/progress, ?stream=1 for NDJSON).
// With -checkpoint-dir the job journals into DIR/<job-id> in the
// standard checkpoint format, so a restarted coordinator resumes where
// it left off and dsa-report can read the directory directly. -once
// exits (writing -out) as soon as the job completes, which is what
// scripts and CI want; without it the coordinator keeps serving the
// results API.
//
// With serve -cache-dir the coordinator keeps a cross-job
// content-addressed score cache: every ingested result feeds it, and
// any job — this one after a restart, or a later overlapping spec —
// whose scores are already known is served from it without dispatching
// work. Counters are served on GET /v1/cache and by
// `dsa-report -coordinator URL cache`.
//
// Production switches: -auth-token requires workers to present the
// same shared secret (constant-time bearer-token check on every
// mutating endpoint); -rate-limit/-rate-burst apply per-client
// token-bucket admission to the /v1 API; -priority sets the job's
// fair-share weight against other jobs on the same coordinator.
// -audit-rate F silently re-runs that fraction of completed tasks on a
// second worker and byte-compares the results: a worker caught
// uploading wrong values is quarantined (all further requests get HTTP
// 429), its unaudited results are invalidated and re-queued, and the
// grid_worker_quarantined metric plus a dashboard pill record the
// verdict. -hedge grants one speculative duplicate lease for tasks
// stuck on a straggler (first idempotent upload wins). The
// coordinator always serves GET /metrics (Prometheus text) and a live
// HTML dashboard at GET /v1/dashboard. On SIGTERM (or the first ^C) it
// drains: no new leases are granted, in-flight leases settle (upload
// or expire), then it exits cleanly — a second signal force-quits.
// POST /v1/drain does the same remotely.
//
// work runs one worker until the job completes. -workers controls how
// many tasks it computes in parallel (default: all cores); -cache-dir
// memoises scores on the worker side, so a re-leased or overlapping
// task uploads known values instead of recomputing them; -reconnect W
// keeps the worker retrying through a coordinator outage for up to a
// continuous window W (default 0: fail fast); -cpuprofile /
// -memprofile write pprof profiles of the worker's share of the sweep
// (see the README's "Benchmarking and profiling" guide).
//
// Observability: -trace-dir appends this worker's span journal
// (trace-<name>.jsonl — lease, lease-batch, task and upload spans,
// each carrying the request ID the coordinator logs) into DIR, where
// `dsa-report trace DIR` merges it with other workers' journals.
// -metrics-addr serves GET /metrics (Prometheus text) with live task /
// point / lease / upload-retry counters. -ship-traces streams the
// journal to the coordinator (chunked, offset-resumed POST /v1/trace
// every -ship-interval, with a final flush on exit), so the
// coordinator's GET /v1/trace, dashboard timeline and federated
// /metrics see the whole fleet without anyone hand-collecting files —
// then `dsa-report trace http://host:8437` analyzes the collected set.
// -pprof mounts /debug/pprof/ on the -metrics-addr mux (worker) or the
// API mux (serve), gated behind -auth-token when one is set. Point a
// report at the grid with:
//
//	dsa-report -domain D -coordinator http://host:8437 top
//
// Chaos switches (for the deterministic fault harness, see
// internal/chaos and scripts/chaos_smoke.sh): -chaos-transport
// "seed=7,drop=0.05,delay=0.1:20ms,dup=0.05,corrupt=0.05,err500=0.05"
// wraps the worker's HTTP client in a seeded fault-injecting
// RoundTripper; -chaos-byzantine makes the worker upload subtly wrong
// values, which a coordinator running -audit-rate should catch and
// quarantine.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/dsa"
	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/gridobs"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/pra"
	"repro/internal/profiling"

	// Register the domains this tool can sweep.
	_ "repro/internal/delivery"
	_ "repro/internal/gossip"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsa-grid: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: dsa-grid serve|work [flags] (run with -h for details)")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch os.Args[1] {
	case "serve":
		runServe(ctx, os.Args[2:])
	case "work":
		runWork(ctx, os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want serve or work)", os.Args[1])
	}
}

func runServe(sigCtx context.Context, args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8437", "HTTP listen address")
		domain    = fs.String("domain", pra.DomainName, "design space to sweep, one of: "+strings.Join(dsa.Names(), ", "))
		preset    = fs.String("preset", "quick", "quick or paper")
		stride    = fs.Int("stride", 1, "evaluate every Nth point of the space")
		opponents = fs.Int("opponents", -1, "opponent panel size (0 = full round-robin)")
		peers     = fs.Int("peers", 0, "population size override")
		rounds    = fs.Int("rounds", 0, "rounds per run override")
		perfRuns  = fs.Int("perfruns", 0, "performance runs override")
		encRuns   = fs.Int("encruns", 0, "encounter runs override")
		seed      = fs.Int64("seed", 1, "master seed")
		chunk     = fs.Int("chunk", 0, "points per task (0 = default)")
		ckptDir   = fs.String("checkpoint-dir", "", "journal results under DIR/<job-id>; survives coordinator restarts")
		cacheDir  = fs.String("cache-dir", "", "cross-job score cache; known scores are served without dispatching work")
		leaseTTL  = fs.Duration("lease-ttl", grid.DefaultLeaseTTL, "task lease duration; unheartbeated leases expire and re-queue")
		out       = fs.String("out", "", "write the assembled CSV here when the job completes")
		once      = fs.Bool("once", false, "exit once the job completes instead of keeping the results API up")
		linger    = fs.Duration("linger", 2*time.Second, "with -once, keep the API up this long after completion so workers see the final state")
		authToken = fs.String("auth-token", "", "shared secret workers must present as a bearer token (empty = open grid)")
		rateLimit = fs.Float64("rate-limit", 0, "per-client requests/second against the /v1 API (0 = unlimited)")
		rateBurst = fs.Float64("rate-burst", 0, "rate-limit burst capacity (0 = one second of traffic)")
		priority  = fs.Int("priority", 1, "fair-share weight of this job against other jobs on the coordinator")
		pprofOn   = fs.Bool("pprof", false, "mount /debug/pprof/ on the API mux (auth-gated when -auth-token is set)")
		auditRate = fs.Float64("audit-rate", 0, "fraction of completed tasks silently re-verified on a second worker (0 = off); mismatches quarantine the liar")
		hedge     = fs.Bool("hedge", false, "speculatively duplicate straggling leases onto idle workers (first result wins)")
	)
	fs.Parse(args)
	if *auditRate < 0 || *auditRate > 1 {
		log.Fatalf("audit-rate must be in [0,1], got %g", *auditRate)
	}
	if *stride < 1 {
		log.Fatal("stride must be >= 1")
	}
	if *chunk < 0 {
		log.Fatalf("chunk must be >= 0, got %d", *chunk)
	}
	if *leaseTTL <= 0 {
		log.Fatal("lease-ttl must be positive")
	}
	d, err := dsa.Get(*domain)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := d.DefaultConfig(*preset)
	if err != nil {
		log.Fatal(err)
	}
	// Shared flag→spec mapping with dsa-sweep: identical flags must
	// mean identical specs or the byte-identical guarantee (and the
	// smoke test's cmp) breaks.
	cfg = dsa.ApplyOverrides(cfg, *seed, *opponents, *peers, *rounds, *perfRuns, *encRuns)
	points := dsa.StridePoints(d, *stride)

	coordOpts := grid.CoordinatorOptions{
		Dir: *ckptDir, LeaseTTL: *leaseTTL, Logf: log.Printf, CSV: exp.WriteDomainCSV,
		AuthToken: *authToken, RateLimit: *rateLimit, RateBurst: *rateBurst,
		Pprof: *pprofOn, AuditRate: *auditRate, Hedge: *hedge,
	}
	if *cacheDir != "" {
		store, err := cache.Open(cache.Options{Dir: *cacheDir})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		coordOpts.Cache = store
		st := store.Stats()
		log.Printf("score cache %s: %d entries, %d bytes on disk", *cacheDir, st.Entries, st.Bytes)
	}
	coord := grid.NewCoordinator(coordOpts)
	defer coord.Close()
	id, err := coord.AddJobPriority(job.Spec{Domain: d, Points: points, Cfg: cfg, Chunk: *chunk}, *priority)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("job %s: %d %s points (%s preset); workers join with: dsa-grid work -coordinator http://<host>%s",
		id, len(points), d.Name(), *preset, *addr)

	// The serve context governs the API's lifetime; the first signal
	// does not cancel it but starts a graceful drain (workers are told
	// to exit, in-flight leases settle, then Serve returns). A second
	// signal force-quits: signal.NotifyContext unregisters after
	// firing, restoring the default handler.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-sigCtx.Done():
			log.Printf("signal: draining — no new leases; exiting once in-flight leases settle (signal again to force quit)")
			coord.Drain(context.Background())
		case <-ctx.Done():
		}
	}()
	go reportProgress(ctx, coord, id)
	fatal := make(chan error, 1)
	go func() {
		scores, err := coord.WaitComplete(ctx, id)
		if err != nil {
			if ctx.Err() == nil {
				// Not a shutdown: the job finished but could not be
				// assembled (e.g. a Domain.Assemble failure). Surface
				// it and bring the coordinator down instead of hanging
				// -once forever.
				fatal <- err
				cancel()
			}
			return
		}
		if *out != "" {
			if err := writeCSV(*out, d, scores); err != nil {
				log.Printf("write %s: %v", *out, err)
			} else {
				log.Printf("wrote %s (%d rows)", *out, len(scores.Points))
			}
		}
		if *once {
			// Give the workers' final lease polls a chance to see the
			// Complete flag before the listener goes away.
			select {
			case <-time.After(*linger):
			case <-ctx.Done():
			}
			cancel()
		}
	}()
	if err := coord.Serve(ctx, *addr, func(bound string) { log.Printf("serving /v1 on %s", bound) }); err != nil {
		log.Fatal(err)
	}
	select {
	case err := <-fatal:
		log.Fatal(err)
	default:
	}
}

// reportProgress logs one line whenever the done count moves, at most
// every 2 seconds.
func reportProgress(ctx context.Context, coord *grid.Coordinator, id string) {
	lastDone := -1
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		snap, err := coord.Progress(id)
		if err != nil {
			return
		}
		if snap.Done != lastDone {
			lastDone = snap.Done
			log.Printf("progress: %d/%d tasks done, %d leased, %d pending, %d workers, %d requeues",
				snap.Done, snap.Total, snap.Leased, snap.Pending, snap.Workers, snap.Requeues)
		}
		if snap.Complete {
			return
		}
	}
}

// writeCSV matches dsa-sweep's output exactly (exp.WriteDomainCSV is
// the shared layout policy), so grid and single-process sweeps emit
// interchangeable files.
func writeCSV(path string, d dsa.Domain, scores *dsa.Scores) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.WriteDomainCSV(f, d, scores); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runWork(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (e.g. http://host:8437)")
		jobID       = fs.String("job", "", "job to work on (default: serve all jobs, fair-scheduled by the coordinator)")
		name        = fs.String("name", "", "worker identity (default: host-pid-N)")
		workers     = fs.Int("workers", 0, "parallel tasks (0 = all cores)")
		perLease    = fs.Int("tasks-per-lease", 0, "tasks per lease call (0 = coordinator's cap)")
		cacheDir    = fs.String("cache-dir", "", "worker-side score cache; leased tasks reuse known scores")
		authToken   = fs.String("auth-token", "", "shared secret the coordinator requires (serve -auth-token)")
		traceDir    = fs.String("trace-dir", "", "append this worker's span journal (trace-<name>.jsonl) into DIR")
		metricsAddr = fs.String("metrics-addr", "", "serve worker Prometheus counters on this address at GET /metrics")
		shipTraces  = fs.Bool("ship-traces", false, "stream the span journal to the coordinator (needs -trace-dir)")
		shipEvery   = fs.Duration("ship-interval", grid.DefaultShipInterval, "incremental trace shipping cadence")
		pprofOn     = fs.Bool("pprof", false, "mount /debug/pprof/ on the -metrics-addr mux (auth-gated when -auth-token is set)")
		cpuProf     = fs.String("cpuprofile", "", "write a pprof CPU profile of this worker to this file")
		memProf     = fs.String("memprofile", "", "write a pprof heap profile (post-GC) to this file on completion")
		reconnect   = fs.Duration("reconnect", 0, "ride out coordinator outages up to this long instead of exiting on the first unreachable call")
		chaosSpec   = fs.String("chaos-transport", "", "inject seeded transport faults on every coordinator call, e.g. seed=7,drop=0.05,delay=0.1:20ms,dup=0.05,corrupt=0.05,err500=0.05 (chaos testing)")
		byzantine   = fs.Bool("chaos-byzantine", false, "upload corrupted result values (chaos testing: this worker should end up quarantined)")
	)
	fs.Parse(args)
	if *coordinator == "" {
		log.Fatal("work needs -coordinator URL")
	}
	if *shipTraces && *traceDir == "" {
		log.Fatal("-ship-traces needs -trace-dir (the journal being shipped)")
	}
	if *pprofOn && *metricsAddr == "" {
		log.Fatal("-pprof needs -metrics-addr (the mux it mounts on)")
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	if *name == "" && (*traceDir != "" || *metricsAddr != "") {
		// Pin the identity now so the journal name, the metric labels in
		// dashboards and the coordinator's worker column all agree.
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	workOpts := grid.WorkerOptions{
		Name: *name, Workers: *workers, TasksPerLease: *perLease,
		AuthToken: *authToken, Logf: log.Printf, Reconnect: *reconnect,
	}
	if *chaosSpec != "" {
		cfg, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		workOpts.Client = &http.Client{
			Timeout:   grid.DefaultHTTPTimeout,
			Transport: grid.AuthTransport(*authToken, chaos.NewTransport(cfg, nil, log.Printf)),
		}
		log.Printf("chaos transport on: %s", *chaosSpec)
	}
	if *byzantine {
		workOpts.Corrupt = func(t job.Task, values []float64) []float64 {
			out := append([]float64(nil), values...)
			if len(out) > 0 {
				out[0]++
			}
			return out
		}
		log.Printf("CHAOS: uploading corrupted result values (this worker should end up quarantined)")
	}
	if *traceDir != "" {
		rec, err := obs.OpenDir(*traceDir, *name)
		if err != nil {
			log.Fatal(err)
		}
		defer rec.Close()
		workOpts.Trace = rec
		log.Printf("tracing to %s", obs.JournalPath(*traceDir, *name))
	}
	if *metricsAddr != "" {
		metrics := gridobs.NewWorkerMetrics(nil)
		workOpts.Metrics = metrics
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		if *pprofOn {
			mux.Handle("/debug/pprof/", profiling.Handler(*authToken))
			log.Printf("serving /debug/pprof/ on %s (auth %s)", ln.Addr(),
				map[bool]string{true: "on", false: "off"}[*authToken != ""])
		}
		go http.Serve(ln, mux) //nolint:errcheck — dies with the process
		log.Printf("serving /metrics on %s", ln.Addr())
	}
	if *cacheDir != "" {
		store, err := cache.Open(cache.Options{Dir: *cacheDir})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		store.SetTracer(workOpts.Trace)
		workOpts.Cache = store
	}
	var shipper *grid.TraceShipper
	if *shipTraces {
		shipper = grid.NewTraceShipper(*coordinator, workOpts.Trace,
			obs.JournalPath(*traceDir, *name), grid.TraceShipperOptions{
				Job: *jobID, AuthToken: *authToken, Metrics: workOpts.Metrics,
				Interval: *shipEvery, Logf: log.Printf,
			})
		go shipper.Run(ctx)
		log.Printf("shipping trace to %s every %s", *coordinator, *shipEvery)
	}
	// finalShip drains whatever the incremental loop has not sent yet
	// (on its own context — the worker's may already be cancelled).
	// Called after Trace.Close on the fatal paths: Ship reads the
	// journal file and Flush on a closed recorder is a no-op.
	finalShip := func() {
		if shipper == nil {
			return
		}
		shipCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := shipper.Ship(shipCtx); err != nil {
			log.Printf("final trace ship: %v", err)
		}
	}
	err = grid.Work(ctx, *coordinator, *jobID, workOpts)
	switch {
	case err == nil:
		finalShip()
		log.Printf("job complete")
	case ctx.Err() != nil:
		// log.Fatal skips defers: flush the journal and profiles so an
		// interrupted worker still leaves usable artifacts.
		workOpts.Trace.Close()
		finalShip()
		stopProf()
		log.Fatal("interrupted; held leases will expire and re-queue")
	default:
		workOpts.Trace.Close() // likewise a worker dying on a grid error
		finalShip()
		stopProf()
		log.Fatal(err)
	}
}
