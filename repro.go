// Package repro is a Go implementation of Design Space Analysis (DSA),
// reproducing "Design Space Analysis for Modeling Incentives in
// Distributed Systems" (Rahman, Vinkó, Hales, Pouwelse, Sips —
// SIGCOMM 2011).
//
// The root package is a thin facade over the implementation packages:
//
//   - internal/game      — 2×2 games, the BitTorrent Dilemma, iterated
//     strategies and Axelrod tournaments (Section 2.1).
//   - internal/analytic  — the expected-game-wins model and the Nash
//     equilibrium analysis of Birds vs BitTorrent (Section 2.2 +
//     Appendix).
//   - internal/design    — the 3270-protocol file-swarming design space
//     (Section 4.2).
//   - internal/cyclesim  — the cycle-based simulation model
//     (Section 4.3.1).
//   - internal/pra       — the Performance/Robustness/Aggressiveness
//     quantification (Sections 3.2, 4.3).
//   - internal/core      — the domain-agnostic DSA framework with
//     exhaustive and heuristic explorers (Sections 3, 7).
//   - internal/dsa       — the Domain interface: what a design space
//     must provide for the generic engine layers to run it.
//   - internal/job       — the sharded, checkpointed sweep engine; it
//     executes any Domain.
//   - internal/cache     — the content-addressed score cache: memoizes
//     raw scores across sweeps, explorers and grid jobs (see
//     OpenScoreCache / SweepOptions.Cache).
//   - internal/grid      — the HTTP coordinator/worker grid: a sweep
//     served as leased tasks to workers on any machines, survivable
//     under worker failure (see ServeGrid / GridSweep).
//   - internal/obs       — the tracing subsystem: span journals
//     (append-only JSONL, one per writer, crash-tolerant and
//     mergeable across shards and workers) and the analyzer behind
//     `dsa-report trace` (see OpenTraceJournal / AnalyzeTrace).
//   - internal/swarm     — the piece-level BitTorrent swarm simulator
//     used for validation (Section 5).
//   - internal/gossip    — DSA applied to the gossip domain
//     (Sections 3.1, 7).
//   - internal/delivery  — DSA applied to the content-delivery
//     orchestration domain: a debswarm-style chunked downloader over
//     peers + mirror, with adversarial scenarios inside the design
//     space (Section 7's generalisation claim).
//   - internal/bandwidth — the Piatek et al. upload-capacity
//     distribution peers are initialised from.
//
// The type aliases and constructors here cover the common workflow:
// enumerate or pick protocols, quantify them with PRA, and validate
// winners in the swarm simulator. See examples/ for runnable programs
// and cmd/ for the tools that regenerate every figure and table.
package repro

import (
	"context"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/dsa"
	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/pra"
	"repro/internal/swarm"

	// Register the built-in gossip and delivery domains (pra registers
	// swarming and is imported above).
	_ "repro/internal/delivery"
	_ "repro/internal/gossip"
)

// Protocol is one point in the file-swarming design space.
type Protocol = design.Protocol

// Config scales the PRA quantification.
type Config = pra.Config

// Scores holds Performance, Robustness and Aggressiveness per protocol.
type Scores = pra.Scores

// SweepResult bundles PRA scores with figure/table extractors.
type SweepResult = exp.SweepResult

// SwarmConfig describes a Section 5 swarm experiment.
type SwarmConfig = swarm.Config

// Client is a swarm client variant (BitTorrent, Birds, ...).
type Client = swarm.Client

// Swarm client variants.
const (
	BT     = swarm.ClientBT
	Birds  = swarm.ClientBirds
	Loyal  = swarm.ClientLoyal
	SortS  = swarm.ClientSortS
	Random = swarm.ClientRandom
)

// Protocols returns the full 3270-protocol design space in ID order.
func Protocols() []Protocol { return design.Enumerate() }

// Named returns the paper's named protocols (BitTorrent, Birds,
// LoyalWhenNeeded, SortS, SortRandom, MostRobust, Freerider).
func Named() map[string]Protocol { return design.Named() }

// QuickConfig returns the reduced-scale PRA configuration.
func QuickConfig() Config { return pra.Quick() }

// PaperConfig returns the full Section 4.3 configuration (50 peers,
// 500 rounds, 100 performance runs, 10 runs per encounter, full
// round-robin — the paper's 25-cluster-hour experiment).
func PaperConfig() Config { return pra.Paper() }

// RunPRA quantifies the given protocols (nil = whole space).
func RunPRA(protocols []Protocol, cfg Config) (*SweepResult, error) {
	return exp.Sweep(protocols, cfg)
}

// Domain packages one design space (its core.Space, point↔ID codec,
// measure kinds, deterministic ScoreSlice evaluator and whole-set
// Assemble step) for the generic engine layers. Implementing it buys a
// new domain sharding, checkpointing, resume and the CLIs for free.
type Domain = dsa.Domain

// SweepConfig is the domain-independent sweep scale.
type SweepConfig = dsa.Config

// SweepOptions controls sharding, checkpointing and progress reporting
// of a generic sweep.
type SweepOptions = job.Options

// DomainScores is the assembled result of a generic sweep: per-measure
// value vectors aligned with the swept points.
type DomainScores = dsa.Scores

// SweepProgress is the snapshot passed to SweepOptions.Progress after
// every completed task.
type SweepProgress = job.Progress

// SpacePoint is one point of a design space (a vector of value
// indices, one per dimension).
type SpacePoint = core.Point

// ErrSweepIncomplete reports that this process's shard is done but
// other shards' tasks are still outstanding.
var ErrSweepIncomplete = job.ErrIncomplete

// Domains returns every registered DSA domain, sorted by name. The
// built-ins — the file-swarming space of Section 4 ("swarming",
// internal/pra), the gossip space of Section 3.1 ("gossip",
// internal/gossip) and the download-orchestration space ("delivery",
// internal/delivery) — register on import; additional domains appear
// here once their package is imported.
func Domains() []Domain { return dsa.Registered() }

// DomainByName resolves a registered domain by name.
func DomainByName(name string) (Domain, error) { return dsa.Get(name) }

// RunSweep runs the full quantification of a domain (nil points =
// whole space semantics: every valid point) through the sharded,
// checkpointed job engine and returns the assembled scores.
func RunSweep(d Domain, cfg SweepConfig, opts SweepOptions) (*DomainScores, error) {
	return RunSweepContext(context.Background(), d, nil, cfg, opts)
}

// RunSweepContext is RunSweep with explicit context and point set (nil
// = the whole space): cancelling the context stops the sweep after the
// in-flight tasks drain, and a checkpointed run resumes where it left
// off.
func RunSweepContext(ctx context.Context, d Domain, points []SpacePoint, cfg SweepConfig, opts SweepOptions) (*DomainScores, error) {
	return job.Run(ctx, d, points, cfg, opts)
}

// LoadSweep reassembles a checkpointed sweep of any registered domain
// without running any simulation.
func LoadSweep(dir string) (*DomainScores, error) { return job.Load(dir) }

// ScoreCache memoises raw (measure, point) scores across sweeps,
// explorers and grid jobs. Plug one into SweepOptions.Cache (or the
// explorers in internal/dsa): outputs stay byte-identical, repeated
// work disappears.
type ScoreCache = cache.Store

// ScoreCacheStats is the observability snapshot of a ScoreCache.
type ScoreCacheStats = cache.Stats

// OpenScoreCache opens (or creates) a persistent content-addressed
// score cache in dir; "" opens a memory-only cache. Any number of
// processes may share one directory. Close it when done.
func OpenScoreCache(dir string) (*ScoreCache, error) {
	return cache.Open(cache.Options{Dir: dir})
}

// GridOptions configures ServeGrid.
type GridOptions struct {
	Dir      string               // checkpoint root; "" keeps results in memory only
	Chunk    int                  // points per task; 0 = the engine default
	LeaseTTL time.Duration        // task lease duration; 0 = the grid default
	OnListen func(addr string)    // called with the bound address (useful with ":0")
	Logf     func(string, ...any) // coordinator event log; nil = silent
	// Linger keeps the API up this long after the job completes, so
	// workers can fetch the assembled scores before the server goes
	// away. 0 = 2s; negative = shut down immediately.
	Linger time.Duration
	// Cache, if non-nil, is the coordinator's cross-job score cache:
	// ingested results feed it, and tasks whose scores it already
	// holds are served without being dispatched.
	Cache *ScoreCache
	// AuthToken, when non-empty, requires workers to present the same
	// shared secret as a bearer token on every mutating endpoint.
	AuthToken string
	// RateLimit / RateBurst apply per-client token-bucket admission to
	// the /v1 API (requests/second and burst capacity); 0 disables.
	RateLimit float64
	RateBurst float64
	// Priority is the job's fair-share scheduling weight against other
	// jobs on the same coordinator; 0 means 1.
	Priority int
}

// ServeGrid starts a grid coordinator on addr serving the sweep of d
// over points (nil = the whole space) and blocks until every task is
// done — returning the assembled scores, byte-identical to RunSweep —
// or until ctx is cancelled. Workers join with GridSweep or
// `dsa-grid work -coordinator http://<addr>`; any of them may die
// mid-sweep, their expired leases are re-run elsewhere.
func ServeGrid(ctx context.Context, addr string, d Domain, points []SpacePoint, cfg SweepConfig, opts GridOptions) (*DomainScores, error) {
	coordOpts := grid.CoordinatorOptions{
		Dir: opts.Dir, LeaseTTL: opts.LeaseTTL, Logf: opts.Logf, CSV: exp.WriteDomainCSV,
		AuthToken: opts.AuthToken, RateLimit: opts.RateLimit, RateBurst: opts.RateBurst,
	}
	if opts.Cache != nil {
		coordOpts.Cache = opts.Cache
	}
	coord := grid.NewCoordinator(coordOpts)
	defer coord.Close()
	priority := opts.Priority
	if priority == 0 {
		priority = 1
	}
	id, err := coord.AddJobPriority(job.Spec{Domain: d, Points: points, Cfg: cfg, Chunk: opts.Chunk}, priority)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- coord.Serve(ctx, addr, opts.OnListen) }()
	type waitResult struct {
		scores *DomainScores
		err    error
	}
	waited := make(chan waitResult, 1)
	go func() {
		s, err := coord.WaitComplete(ctx, id)
		waited <- waitResult{s, err}
	}()
	select {
	case r := <-waited:
		if r.err == nil {
			linger := opts.Linger
			if linger == 0 {
				linger = 2 * time.Second
			}
			if linger > 0 {
				select {
				case <-time.After(linger):
				case <-ctx.Done():
				}
			}
		}
		cancel()
		<-serveErr
		return r.scores, r.err
	case err := <-serveErr:
		// The server died first (bad addr, listener error) — or ctx
		// was cancelled, in which case the waiter has the ctx error.
		cancel()
		r := <-waited
		if err != nil {
			return nil, err
		}
		return r.scores, r.err
	}
}

// GridSweep contributes an in-process worker to the grid coordinator
// at coordinatorURL — leasing tasks, computing them `workers` wide
// (0 = all cores) and uploading results — until the coordinator's
// first incomplete job completes (or, if every job is already done,
// the first job), then fetches and returns its assembled scores.
func GridSweep(ctx context.Context, coordinatorURL string, workers int) (*DomainScores, error) {
	jobs, err := grid.ListJobs(ctx, nil, coordinatorURL)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, ErrSweepIncomplete
	}
	id := jobs[0].ID
	for _, j := range jobs {
		if !j.Complete {
			id = j.ID
			break
		}
	}
	if err := grid.Work(ctx, coordinatorURL, id, grid.WorkerOptions{Workers: workers}); err != nil {
		return nil, err
	}
	return grid.FetchScores(ctx, nil, coordinatorURL, id)
}

// TraceRecorder journals spans and counts engine events — plug one
// into SweepOptions.Trace (or grid.WorkerOptions.Trace) and every
// task, cache lookup and simulate slice lands in an append-only JSONL
// journal that `dsa-report trace` analyzes. Steady-state recording is
// allocation-free; a nil *TraceRecorder is a valid no-op everywhere.
type TraceRecorder = obs.Recorder

// TraceStats is the recorder's live counter snapshot (tasks done,
// points simulated vs cache-served, upload retries).
type TraceStats = obs.Stats

// TraceAnalysis is the digest AnalyzeTrace produces: critical path,
// per-measure latency, stragglers, cache attribution and per-worker
// utilization.
type TraceAnalysis = obs.Analysis

// OpenTraceJournal opens (creating dir if needed) an append-only span
// journal trace-<writer>.jsonl for one writer — a sweep shard or a
// grid worker. Journals from any number of writers sharing a directory
// merge cleanly; re-opening appends, and a torn final line from a
// crashed writer is skipped on load.
func OpenTraceJournal(dir, writer string) (*TraceRecorder, error) {
	return obs.OpenDir(dir, writer)
}

// NewTraceRecorder returns a memory-only recorder: spans are counted,
// not journalled. Use it when only the live Stats matter.
func NewTraceRecorder(writer string) *TraceRecorder { return obs.NewRecorder(writer) }

// AnalyzeTrace loads every journal in dir and digests the merged
// timeline.
func AnalyzeTrace(dir string) (*TraceAnalysis, error) {
	recs, err := obs.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return obs.Analyze(recs), nil
}

// DefaultSwarm returns the Section 5 swarm setup (5 MiB file, 128 KiB/s
// seeder, 10 s choke interval).
func DefaultSwarm() SwarmConfig { return swarm.Default() }

// SwarmEncounter runs client a against client b across composition
// fractions, as in Figure 9.
func SwarmEncounter(a, b Client, fracs []float64, leechers, runs int, cfg SwarmConfig) ([]swarm.MixPoint, error) {
	return swarm.EncounterSeries(a, b, fracs, leechers, runs, cfg)
}
