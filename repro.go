// Package repro is a Go implementation of Design Space Analysis (DSA),
// reproducing "Design Space Analysis for Modeling Incentives in
// Distributed Systems" (Rahman, Vinkó, Hales, Pouwelse, Sips —
// SIGCOMM 2011).
//
// The root package is a thin facade over the implementation packages:
//
//   - internal/game      — 2×2 games, the BitTorrent Dilemma, iterated
//     strategies and Axelrod tournaments (Section 2.1).
//   - internal/analytic  — the expected-game-wins model and the Nash
//     equilibrium analysis of Birds vs BitTorrent (Section 2.2 +
//     Appendix).
//   - internal/design    — the 3270-protocol file-swarming design space
//     (Section 4.2).
//   - internal/cyclesim  — the cycle-based simulation model
//     (Section 4.3.1).
//   - internal/pra       — the Performance/Robustness/Aggressiveness
//     quantification (Sections 3.2, 4.3).
//   - internal/core      — the domain-agnostic DSA framework with
//     exhaustive and heuristic explorers (Sections 3, 7).
//   - internal/swarm     — the piece-level BitTorrent swarm simulator
//     used for validation (Section 5).
//   - internal/gossip    — DSA applied to the gossip domain
//     (Sections 3.1, 7).
//
// The type aliases and constructors here cover the common workflow:
// enumerate or pick protocols, quantify them with PRA, and validate
// winners in the swarm simulator. See examples/ for runnable programs
// and cmd/ for the tools that regenerate every figure and table.
package repro

import (
	"repro/internal/design"
	"repro/internal/exp"
	"repro/internal/pra"
	"repro/internal/swarm"
)

// Protocol is one point in the file-swarming design space.
type Protocol = design.Protocol

// Config scales the PRA quantification.
type Config = pra.Config

// Scores holds Performance, Robustness and Aggressiveness per protocol.
type Scores = pra.Scores

// SweepResult bundles PRA scores with figure/table extractors.
type SweepResult = exp.SweepResult

// SwarmConfig describes a Section 5 swarm experiment.
type SwarmConfig = swarm.Config

// Client is a swarm client variant (BitTorrent, Birds, ...).
type Client = swarm.Client

// Swarm client variants.
const (
	BT     = swarm.ClientBT
	Birds  = swarm.ClientBirds
	Loyal  = swarm.ClientLoyal
	SortS  = swarm.ClientSortS
	Random = swarm.ClientRandom
)

// Protocols returns the full 3270-protocol design space in ID order.
func Protocols() []Protocol { return design.Enumerate() }

// Named returns the paper's named protocols (BitTorrent, Birds,
// LoyalWhenNeeded, SortS, SortRandom, MostRobust, Freerider).
func Named() map[string]Protocol { return design.Named() }

// QuickConfig returns the reduced-scale PRA configuration.
func QuickConfig() Config { return pra.Quick() }

// PaperConfig returns the full Section 4.3 configuration (50 peers,
// 500 rounds, 100 performance runs, 10 runs per encounter, full
// round-robin — the paper's 25-cluster-hour experiment).
func PaperConfig() Config { return pra.Paper() }

// RunPRA quantifies the given protocols (nil = whole space).
func RunPRA(protocols []Protocol, cfg Config) (*SweepResult, error) {
	return exp.Sweep(protocols, cfg)
}

// DefaultSwarm returns the Section 5 swarm setup (5 MiB file, 128 KiB/s
// seeder, 10 s choke interval).
func DefaultSwarm() SwarmConfig { return swarm.Default() }

// SwarmEncounter runs client a against client b across composition
// fractions, as in Figure 9.
func SwarmEncounter(a, b Client, fracs []float64, leechers, runs int, cfg SwarmConfig) ([]swarm.MixPoint, error) {
	return swarm.EncounterSeries(a, b, fracs, leechers, runs, cfg)
}
